package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// RetryPolicy tunes the retry wrapper. The zero value selects the
// defaults: 4 attempts, 2ms base delay doubling to a 100ms cap, and ±50%
// jitter.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts, first try included.
	MaxAttempts int
	// BaseDelay is the pre-jitter backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Multiplier is the per-retry growth factor.
	Multiplier float64
	// JitterFrac spreads each delay uniformly over
	// [1-JitterFrac, 1+JitterFrac] × nominal, decorrelating retry storms.
	JitterFrac float64
	// MinBudget is the smallest remaining deadline worth another attempt;
	// below it the wrapper returns the last error instead of launching a
	// solve it cannot finish (default 2ms).
	MinBudget time.Duration
	// Seed drives jitter (deterministic per wrapper).
	Seed int64
	// Metrics, when non-nil, receives RecordRetry per re-attempt under
	// the wrapped backend's name.
	Metrics *service.Metrics
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.JitterFrac <= 0 || p.JitterFrac > 1 {
		p.JitterFrac = 0.5
	}
	if p.MinBudget <= 0 {
		p.MinBudget = 2 * time.Millisecond
	}
	return p
}

// retryBackend retries retryable faults within the deadline budget.
type retryBackend struct {
	inner  service.Backend
	policy RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// WithRetry wraps backend with deadline-budgeted retries: retryable faults
// (see Retryable) and structurally invalid results are re-attempted with
// jittered exponential backoff, each attempt under a fresh salted seed so
// a failed embedding or unlucky sample path is not replayed verbatim. The
// wrapper never overshoots the request's context deadline: a backoff that
// does not fit the remaining budget ends the retry loop immediately.
func WithRetry(backend service.Backend, policy RetryPolicy) service.Backend {
	policy = policy.withDefaults()
	return &retryBackend{
		inner:  backend,
		policy: policy,
		rng:    rand.New(rand.NewSource(mix(policy.Seed, 0x7e77))),
	}
}

// Name implements service.Backend.
func (r *retryBackend) Name() string { return r.inner.Name() }

// jitter scales d uniformly into [1-J, 1+J]·d under the wrapper's rng.
func (r *retryBackend) jitter(d time.Duration) time.Duration {
	r.mu.Lock()
	f := 1 - r.policy.JitterFrac + 2*r.policy.JitterFrac*r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// Solve implements service.Backend.
func (r *retryBackend) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	delay := r.policy.BaseDelay
	var lastErr error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			if r.policy.Metrics != nil {
				r.policy.Metrics.Backend(r.Name()).RecordRetry()
			}
			obs.Logger(ctx).WarnContext(ctx, "retrying backend solve",
				"backend", r.Name(), "attempt", attempt+1,
				"max_attempts", r.policy.MaxAttempts, "error", fmt.Sprint(lastErr))
			// Salt the solver seed so the retry explores a different
			// embedding / sample path instead of replaying the failure.
			p.Seed = mix(p.Seed, int64(attempt))
		}
		d, err := r.inner.Solve(ctx, enc, p)
		if err == nil {
			// Vet structure here so silent corruption counts as a
			// retryable fault rather than surviving to the caller.
			if d != nil && d.Valid && d.Order.IsPermutation(enc.Query.NumRelations()) {
				return d, nil
			}
			err = &Error{Kind: KindCorrupted, Backend: r.Name()}
		}
		lastErr = err
		if !Retryable(err) || ctx.Err() != nil {
			return nil, err
		}
		if attempt == r.policy.MaxAttempts-1 {
			break
		}
		// Spend the backoff only if the remaining budget still admits a
		// meaningful attempt afterwards — never overshoot the deadline.
		sleep := r.jitter(delay)
		if deadline, ok := ctx.Deadline(); ok {
			if time.Until(deadline) < sleep+r.policy.MinBudget {
				return nil, fmt.Errorf("faults: retry budget exhausted after %d attempts: %w", attempt+1, lastErr)
			}
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			// Wrap the context error so deadlines keep mapping to 504.
			return nil, fmt.Errorf("faults: cancelled between retries (last failure: %v): %w", lastErr, ctx.Err())
		case <-timer.C:
		}
		delay = time.Duration(float64(delay) * r.policy.Multiplier)
		if delay > r.policy.MaxDelay {
			delay = r.policy.MaxDelay
		}
	}
	return nil, fmt.Errorf("faults: %d attempts failed: %w", r.policy.MaxAttempts, lastErr)
}
