package faults

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFaultyTransportDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	outcomes := func() []bool {
		tr := NewFaultyTransport(nil, NetworkConfig{ResetProb: 0.5, Seed: 42})
		c := &http.Client{Transport: tr}
		var out []bool
		for i := 0; i < 64; i++ {
			resp, err := c.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}

	a, b := outcomes(), outcomes()
	okA := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: outcome differs across identically-seeded runs", i)
		}
		if a[i] {
			okA++
		}
	}
	if okA == 0 || okA == len(a) {
		t.Fatalf("ResetProb=0.5 over %d requests produced %d successes; want a mix", len(a), okA)
	}
}

func TestFaultyTransportDropHangsUntilContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	tr := NewFaultyTransport(nil, NetworkConfig{DropProb: 1, DropTimeout: 5 * time.Second, Seed: 7})
	c := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)

	start := time.Now()
	_, err := c.Do(req)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dropped request succeeded")
	}
	if elapsed < 40*time.Millisecond {
		t.Fatalf("drop returned after %v; want it to hang until the 50ms context deadline", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("drop hung %v past the context deadline", elapsed)
	}
}

func TestFaultyTransportPartitionOneWay(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	cfg := NetworkConfig{
		Self:        "http://node-a",
		Partitions:  []Partition{{From: "http://node-a", To: srv.URL}},
		DropTimeout: 30 * time.Millisecond,
	}
	c := &http.Client{Transport: NewFaultyTransport(nil, cfg)}
	if _, err := c.Get(srv.URL); err == nil {
		t.Fatal("partitioned request succeeded")
	} else if !strings.Contains(err.Error(), "partition") {
		t.Fatalf("want partition error, got: %v", err)
	}

	// A partition whose From is a different node must not apply here.
	other := NetworkConfig{
		Self:       "http://node-b",
		Partitions: []Partition{{From: "http://node-a", To: srv.URL}},
	}
	c2 := &http.Client{Transport: NewFaultyTransport(nil, other)}
	resp, err := c2.Get(srv.URL)
	if err != nil {
		t.Fatalf("unrelated partition blocked the request: %v", err)
	}
	resp.Body.Close()
}

func TestFaultyTransportDynamicBlockUnblock(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	tr := NewFaultyTransport(nil, NetworkConfig{Self: "http://node-a", DropTimeout: 20 * time.Millisecond})
	c := &http.Client{Transport: tr}

	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("pre-block request failed: %v", err)
	}
	resp.Body.Close()

	tr.Block(srv.URL)
	if _, err := c.Get(srv.URL); err == nil {
		t.Fatal("blocked request succeeded")
	}

	tr.Unblock(srv.URL)
	resp, err = c.Get(srv.URL)
	if err != nil {
		t.Fatalf("post-unblock request failed: %v", err)
	}
	resp.Body.Close()
}

func TestFaultyTransportLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	tr := NewFaultyTransport(nil, NetworkConfig{Latency: 10 * time.Millisecond, Seed: 3})
	c := &http.Client{Transport: tr}
	start := time.Now()
	const n = 20
	for i := 0; i < n; i++ {
		resp, err := c.Get(srv.URL)
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
		resp.Body.Close()
	}
	// Mean 10ms over 20 requests: total added delay concentrates near
	// 200ms; even a very unlucky seeded draw stays well above 50ms.
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("20 requests with 10ms mean injected latency took only %v", elapsed)
	}
}

func TestParsePartitions(t *testing.T) {
	got, err := ParsePartitions(" http://a->http://b , ->http://c ")
	if err != nil {
		t.Fatalf("ParsePartitions: %v", err)
	}
	want := []Partition{{From: "http://a", To: "http://b"}, {From: "", To: "http://c"}}
	if len(got) != len(want) {
		t.Fatalf("got %d partitions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("partition %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if p, err := ParsePartitions(""); err != nil || p != nil {
		t.Fatalf("empty spec: got %v, %v", p, err)
	}
	if _, err := ParsePartitions("nonsense"); err == nil {
		t.Fatal("want error for spec without ->")
	}
}
