package faults

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"quantumjoin/internal/service"
)

// fakeClock is a mutex-guarded manual clock for breaker timing tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestBreakerTripsFastFailsAndRecovers walks the full state machine:
// consecutive failures trip the breaker, open fast-fails without touching
// the backend, the open interval admits a half-open probe, and enough
// probe successes close it again.
func TestBreakerTripsFastFailsAndRecovers(t *testing.T) {
	enc := testEncoding(t)
	fail := &Error{Kind: KindRejected, Backend: "qpu"}
	inner := &scriptBackend{name: "qpu", script: []error{fail, fail, fail}}
	clock := &fakeClock{now: time.Unix(0, 0)}
	be := WithBreaker(inner, BreakerConfig{
		ConsecutiveFailures: 3,
		OpenFor:             time.Second,
		HalfOpenSuccesses:   2,
		Now:                 clock.Now,
	})
	hr := be.(service.HealthReporter)

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		if _, err := be.Solve(context.Background(), enc, service.Params{Seed: int64(i)}); err == nil {
			t.Fatalf("scripted failure %d succeeded", i)
		}
	}
	if h := hr.Health(); h.State != service.HealthOpen || h.Trips != 1 {
		t.Fatalf("after 3 failures: health = %+v, want open with 1 trip", h)
	}

	// Open: fast-fail in well under a millisecond, inner never invoked.
	callsBefore := inner.calls.Load()
	start := time.Now()
	_, err := be.Solve(context.Background(), enc, service.Params{Seed: 99})
	if !errors.Is(err, ErrBreakerOpen) || !errors.Is(err, service.ErrUnavailable) {
		t.Fatalf("open breaker err = %v, want ErrBreakerOpen/ErrUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > time.Millisecond {
		t.Errorf("open-breaker fast-fail took %v, want < 1ms", elapsed)
	}
	if inner.calls.Load() != callsBefore {
		t.Error("open breaker touched the backend")
	}

	// After the open interval the next request is a half-open probe; the
	// backend is healthy now (script exhausted), so two probes close it.
	clock.Advance(2 * time.Second)
	if h := hr.Health(); h.State != service.HealthHalfOpen {
		t.Fatalf("after open interval: health = %+v, want half-open", h)
	}
	for i := 0; i < 2; i++ {
		if _, err := be.Solve(context.Background(), enc, service.Params{Seed: int64(100 + i)}); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if h := hr.Health(); h.State != service.HealthOK || h.ConsecutiveFailures != 0 {
		t.Fatalf("after recovery: health = %+v, want ok", h)
	}
}

// TestBreakerHalfOpenFailureReopens: a failed probe sends the breaker
// straight back to open with a fresh interval.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	enc := testEncoding(t)
	fail := &Error{Kind: KindAborted, Backend: "qpu"}
	inner := &scriptBackend{name: "qpu", script: []error{fail, fail, fail}}
	clock := &fakeClock{now: time.Unix(0, 0)}
	be := WithBreaker(inner, BreakerConfig{
		ConsecutiveFailures: 2,
		OpenFor:             time.Second,
		Now:                 clock.Now,
	})
	hr := be.(service.HealthReporter)

	for i := 0; i < 2; i++ {
		_, _ = be.Solve(context.Background(), enc, service.Params{Seed: int64(i)})
	}
	clock.Advance(1500 * time.Millisecond)
	// The probe hits the third scripted failure.
	if _, err := be.Solve(context.Background(), enc, service.Params{Seed: 7}); err == nil {
		t.Fatal("failed probe reported success")
	}
	if h := hr.Health(); h.State != service.HealthOpen || h.Trips != 2 {
		t.Fatalf("after failed probe: health = %+v, want open with 2 trips", h)
	}
	// And the fresh interval holds: still fast-failing before it elapses.
	clock.Advance(500 * time.Millisecond)
	if _, err := be.Solve(context.Background(), enc, service.Params{Seed: 8}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("inside fresh open interval: err = %v, want ErrBreakerOpen", err)
	}
}

// TestBreakerErrorRateTrip: interleaved failures below the consecutive
// threshold still trip the breaker once the windowed error rate crosses
// the configured fraction.
func TestBreakerErrorRateTrip(t *testing.T) {
	enc := testEncoding(t)
	fail := &Error{Kind: KindRejected, Backend: "qpu"}
	// Alternate fail/ok: consecutive never exceeds 1, rate is 50%.
	var script []error
	for i := 0; i < 16; i++ {
		if i%2 == 0 {
			script = append(script, fail)
		} else {
			script = append(script, nil)
		}
	}
	inner := &scriptBackend{name: "qpu", script: script}
	be := WithBreaker(inner, BreakerConfig{
		ConsecutiveFailures: 100, // out of reach
		ErrorRate:           0.4,
		Window:              8,
		MinSamples:          6,
	})
	hr := be.(service.HealthReporter)
	tripped := false
	for i := 0; i < 16; i++ {
		_, _ = be.Solve(context.Background(), enc, service.Params{Seed: int64(i)})
		if hr.Health().State == service.HealthOpen {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("50% error rate never tripped a 0.4 threshold")
	}
}

// TestBreakerIgnoresCallerCancellation: a cancelled context is not a
// backend failure and must not consume the failure budget.
func TestBreakerIgnoresCallerCancellation(t *testing.T) {
	enc := testEncoding(t)
	inner := &scriptBackend{name: "qpu", delay: time.Hour}
	be := WithBreaker(inner, BreakerConfig{ConsecutiveFailures: 2})
	hr := be.(service.HealthReporter)
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, _ = be.Solve(ctx, enc, service.Params{Seed: int64(i)})
	}
	if h := hr.Health(); h.State != service.HealthOK || h.ConsecutiveFailures != 0 {
		t.Fatalf("cancellations moved the breaker: %+v", h)
	}
}

// TestBreakerConcurrentHalfOpenAdmitsOneProbe: under concurrency, exactly
// one request probes the backend while the rest keep fast-failing.
func TestBreakerConcurrentHalfOpenAdmitsOneProbe(t *testing.T) {
	enc := testEncoding(t)
	fail := &Error{Kind: KindRejected, Backend: "qpu"}
	inner := &scriptBackend{name: "qpu", script: []error{fail}, delay: 20 * time.Millisecond}
	clock := &fakeClock{now: time.Unix(0, 0)}
	be := WithBreaker(inner, BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Second, Now: clock.Now})

	if _, err := be.Solve(context.Background(), enc, service.Params{Seed: 0}); err == nil {
		t.Fatal("scripted failure succeeded")
	}
	clock.Advance(2 * time.Second)

	callsBefore := inner.calls.Load()
	var wg sync.WaitGroup
	var opens, oks int64
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := be.Solve(context.Background(), enc, service.Params{Seed: int64(i)})
			mu.Lock()
			defer mu.Unlock()
			if errors.Is(err, ErrBreakerOpen) {
				opens++
			} else if err == nil {
				oks++
			}
		}(i)
	}
	wg.Wait()
	if got := inner.calls.Load() - callsBefore; got != 1 {
		t.Errorf("half-open admitted %d probes, want exactly 1", got)
	}
	if oks != 1 || opens != 7 {
		t.Errorf("outcomes: %d ok / %d fast-fail, want 1/7", oks, opens)
	}
}

// TestBreakerStateAge pins the /healthz state-age satellite: the age is
// seconds since the last state transition under the breaker's own clock,
// and every transition (trip, open→half-open advance, close) resets it.
func TestBreakerStateAge(t *testing.T) {
	enc := testEncoding(t)
	fail := &Error{Kind: KindRejected, Backend: "qpu"}
	inner := &scriptBackend{name: "qpu", script: []error{fail, fail}}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	be := WithBreaker(inner, BreakerConfig{
		ConsecutiveFailures: 2,
		OpenFor:             10 * time.Second,
		HalfOpenSuccesses:   1,
		Now:                 clock.Now,
	})
	hr := be.(service.HealthReporter)

	// Freshly constructed: closed since "now", age grows with the clock.
	clock.Advance(3 * time.Second)
	if h := hr.Health(); h.State != service.HealthOK || h.StateAgeSeconds != 3 {
		t.Fatalf("fresh breaker health = %+v, want ok with age 3s", h)
	}

	// Trip it: age restarts from the trip instant.
	for i := 0; i < 2; i++ {
		_, _ = be.Solve(context.Background(), enc, service.Params{Seed: int64(i)})
	}
	clock.Advance(4 * time.Second)
	if h := hr.Health(); h.State != service.HealthOpen || h.StateAgeSeconds != 4 {
		t.Fatalf("after trip health = %+v, want open with age 4s", h)
	}

	// Past OpenFor the displayed state is half-open; a successful probe
	// (script exhausted) closes it and resets the age again.
	clock.Advance(7 * time.Second)
	if _, err := be.Solve(context.Background(), enc, service.Params{Seed: 9}); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	clock.Advance(2 * time.Second)
	if h := hr.Health(); h.State != service.HealthOK || h.StateAgeSeconds != 2 {
		t.Fatalf("after recovery health = %+v, want ok with age 2s", h)
	}
}
