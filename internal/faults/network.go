package faults

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Partition is a one-way network cut: requests from node From to node To
// fail (they hang like drops — a partition looks like packet loss, not a
// polite reset). Nodes are named by base URL, matching the cluster peer
// list. An empty From matches any sender, so a single config can express
// "nobody reaches To".
type Partition struct {
	From string
	To   string
}

// NetworkConfig tunes the faulty transport. All probabilities are per
// request in [0,1]; the zero value injects nothing.
type NetworkConfig struct {
	// DropProb is the probability a request is silently dropped: it hangs
	// until the request context expires or DropTimeout fires, whichever is
	// first — exactly the failure mode that makes hedging worth having.
	DropProb float64
	// ResetProb is the probability the connection is reset immediately
	// (connection-refused/RST analogue): the request fails fast.
	ResetProb float64
	// Latency, when positive, is the mean added one-way delay; per-request
	// delays are sampled exponentially so the tail is realistic.
	Latency time.Duration
	// DropTimeout bounds how long a dropped request hangs when its context
	// carries no deadline (default 2s).
	DropTimeout time.Duration
	// Partitions are static one-way cuts between named peers. Only entries
	// whose From matches Self (or is empty) apply to this transport.
	Partitions []Partition
	// Self is this node's base URL, used to select applicable partitions.
	Self string
	// Seed drives every fault decision: request n's fate is a pure
	// function of mix(Seed, n), deterministic under any concurrency
	// interleaving (the arrival order of requests still decides which
	// request gets which n).
	Seed int64
}

// FaultyTransport is a deterministic seeded http.RoundTripper wrapper that
// injects network faults between cluster peers: added latency, silent
// drops, connection resets, and one-way partitions. It is the network
// sibling of Inject — the QPU fault injector models the unreliable
// co-processor, this models the unreliable fleet interconnect.
type FaultyTransport struct {
	inner http.RoundTripper
	cfg   NetworkConfig
	n     atomic.Int64

	mu      sync.Mutex
	blocked map[string]bool // dynamic one-way cuts from Self, by target base URL
}

// NewFaultyTransport wraps inner (nil selects http.DefaultTransport) with
// the given fault model.
func NewFaultyTransport(inner http.RoundTripper, cfg NetworkConfig) *FaultyTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if cfg.DropTimeout <= 0 {
		cfg.DropTimeout = 2 * time.Second
	}
	t := &FaultyTransport{inner: inner, cfg: cfg, blocked: make(map[string]bool)}
	for _, p := range cfg.Partitions {
		if p.From == "" || p.From == cfg.Self {
			t.blocked[baseURL(p.To)] = true
		}
	}
	return t
}

// Block adds a dynamic one-way cut from this node to target (a peer base
// URL), as chaosbench does mid-run. Unblock heals it.
func (t *FaultyTransport) Block(target string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.blocked[baseURL(target)] = true
}

// Unblock heals a cut added by Block (or configured via Partitions).
func (t *FaultyTransport) Unblock(target string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.blocked, baseURL(target))
}

func (t *FaultyTransport) isBlocked(target string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.blocked[target]
}

// baseURL normalises a peer name or request URL to scheme://host for
// partition matching.
func baseURL(u string) string {
	if i := strings.Index(u, "://"); i >= 0 {
		rest := u[i+3:]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			return u[:i+3] + rest[:j]
		}
		return u
	}
	if j := strings.IndexByte(u, '/'); j >= 0 {
		return u[:j]
	}
	return u
}

// RoundTrip implements http.RoundTripper.
func (t *FaultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	target := baseURL(req.URL.Scheme + "://" + req.URL.Host)
	ctx := req.Context()

	if t.isBlocked(target) {
		// A partition is indistinguishable from loss: hang, don't reset.
		return nil, t.hang(ctx, fmt.Errorf("faults: network partition %s -> %s (injected)", t.cfg.Self, target))
	}

	rng := rand.New(rand.NewSource(mix(t.cfg.Seed, t.n.Add(1))))

	if rng.Float64() < t.cfg.ResetProb {
		return nil, fmt.Errorf("faults: connection reset to %s (injected)", target)
	}
	if rng.Float64() < t.cfg.DropProb {
		return nil, t.hang(ctx, fmt.Errorf("faults: request to %s dropped (injected)", target))
	}
	if t.cfg.Latency > 0 {
		delay := time.Duration(rng.ExpFloat64() * float64(t.cfg.Latency))
		if delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
	}
	return t.inner.RoundTrip(req)
}

// hang blocks until the request context expires or DropTimeout fires,
// then returns cause — the way a real drop surfaces as a client timeout
// rather than an immediate error.
func (t *FaultyTransport) hang(ctx context.Context, cause error) error {
	timer := time.NewTimer(t.cfg.DropTimeout)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", cause, context.Cause(ctx))
	case <-timer.C:
		return cause
	}
}

// ParsePartitions parses the -chaos-net-partition flag format: a
// comma-separated list of "from->to" pairs of peer base URLs, with an
// empty from ("->to") meaning any sender.
func ParsePartitions(s string) ([]Partition, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Partition
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		from, to, ok := strings.Cut(part, "->")
		if !ok || strings.TrimSpace(to) == "" {
			return nil, fmt.Errorf("faults: bad partition %q (want from->to)", part)
		}
		out = append(out, Partition{From: strings.TrimSpace(from), To: strings.TrimSpace(to)})
	}
	return out, nil
}
