package faults

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
	"quantumjoin/internal/noise"
	"quantumjoin/internal/service"
)

// testEncoding builds a small valid encoding shared by the wrapper tests.
func testEncoding(t *testing.T) *core.Encoding {
	t.Helper()
	q := &join.Query{
		Relations: []join.Relation{
			{Name: "R", Card: 100},
			{Name: "S", Card: 1000},
			{Name: "T", Card: 50},
		},
		Predicates: []join.Predicate{
			{R1: 0, R2: 1, Sel: 0.01},
			{R1: 1, R2: 2, Sel: 0.1},
		},
	}
	enc, err := core.Encode(q, core.Options{Thresholds: core.DefaultThresholds(q, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// scriptBackend returns canned results: each Solve pops the next entry of
// script (an error, or nil for a valid decoded order) and counts calls.
type scriptBackend struct {
	name   string
	script []error // nil entry = success
	calls  atomic.Int64
	good   *core.Decoded
	delay  time.Duration
}

func (s *scriptBackend) Name() string { return s.name }

func (s *scriptBackend) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	n := int(s.calls.Add(1)) - 1
	if s.delay > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(s.delay):
		}
	}
	if n < len(s.script) && s.script[n] != nil {
		return nil, s.script[n]
	}
	if s.good != nil {
		return s.good, nil
	}
	d := enc.Decode(mustOrderState(enc))
	return &d, nil
}

// mustOrderState encodes the identity order into a full QUBO assignment.
func mustOrderState(enc *core.Encoding) []bool {
	order := make(join.Order, enc.Query.NumRelations())
	for i := range order {
		order[i] = i
	}
	dec, err := enc.EncodeOrder(order)
	if err != nil {
		panic(err)
	}
	full, err := enc.CompleteSlacks(dec)
	if err != nil {
		panic(err)
	}
	return full
}

// fates runs n seeded solves through the injector and records each
// request's outcome kind ("ok" for success).
func fates(t *testing.T, be service.Backend, n int) []string {
	t.Helper()
	enc := testEncoding(t)
	out := make([]string, n)
	for i := range out {
		_, err := be.Solve(context.Background(), enc, service.Params{Seed: int64(i)})
		switch {
		case err == nil:
			out[i] = "ok"
		default:
			var fe *Error
			if !errors.As(err, &fe) {
				t.Fatalf("seed %d: unclassified error %v", i, err)
			}
			out[i] = fe.Kind.String()
		}
	}
	return out
}

// TestInjectorDeterministic pins the core chaos-testing property: a
// request's fault fate is a pure function of (injector seed, request
// seed), independent of call order or interleaving.
func TestInjectorDeterministic(t *testing.T) {
	cfg := InjectorConfig{RejectProb: 0.3, AbortProb: 0.1, CorruptProb: 0.1, Seed: 42}
	a := fates(t, Inject(&scriptBackend{name: "qpu"}, cfg), 64)
	b := fates(t, Inject(&scriptBackend{name: "qpu"}, cfg), 64)
	rejected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d: fate %q vs %q across identical injectors", i, a[i], b[i])
		}
		if a[i] == KindRejected.String() {
			rejected++
		}
	}
	if rejected == 0 || rejected == len(a) {
		t.Errorf("rejection count %d/%d does not reflect a 0.3 probability", rejected, len(a))
	}
	// A different injector seed must reshuffle the fates.
	cfg.Seed = 43
	c := fates(t, Inject(&scriptBackend{name: "qpu"}, cfg), 64)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("changing the injector seed left every fate unchanged")
	}
}

func TestInjectorQueueTimeout(t *testing.T) {
	be := Inject(&scriptBackend{name: "qpu"}, InjectorConfig{
		Seed:   7,
		Access: noise.AccessModel{QueueWaitNs: float64(time.Hour)},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := be.Solve(ctx, testEncoding(t), service.Params{Seed: 1})
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindQueueTimeout {
		t.Fatalf("err = %v, want queue-timeout fault", err)
	}
	if !errors.Is(err, service.ErrUnavailable) {
		t.Error("fault does not unwrap to service.ErrUnavailable")
	}
	// The queue estimator bounces the job up front instead of sleeping out
	// the deadline.
	if elapsed := time.Since(start); elapsed > 15*time.Millisecond {
		t.Errorf("queue timeout burned %v of budget", elapsed)
	}
}

func TestInjectorCalibrationBlackout(t *testing.T) {
	now := time.Unix(0, 0)
	be := Inject(&scriptBackend{name: "qpu"}, InjectorConfig{
		Seed:              1,
		CalibrationPeriod: 100 * time.Millisecond,
		CalibrationWindow: 10 * time.Millisecond,
		Now:               func() time.Time { return now },
	})
	enc := testEncoding(t)
	_, err := be.Solve(context.Background(), enc, service.Params{Seed: 1})
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindCalibration {
		t.Fatalf("inside window: err = %v, want calibration fault", err)
	}
	now = now.Add(50 * time.Millisecond) // outside the blackout window
	if _, err := be.Solve(context.Background(), enc, service.Params{Seed: 1}); err != nil {
		t.Fatalf("outside window: %v", err)
	}
}

func TestInjectorCorruptionCaughtByRetryVetting(t *testing.T) {
	enc := testEncoding(t)
	inner := &scriptBackend{name: "qpu"}
	be := WithRetry(Inject(inner, InjectorConfig{CorruptProb: 1, Seed: 3}), RetryPolicy{MaxAttempts: 3})
	d, err := be.Solve(context.Background(), enc, service.Params{Seed: 5})
	if err != nil {
		// All attempts corrupted: acceptable, but the error must be the
		// classified corruption fault, never a bad plan.
		var fe *Error
		if !errors.As(err, &fe) || fe.Kind != KindCorrupted {
			t.Fatalf("err = %v, want corrupted fault", err)
		}
		return
	}
	if !d.Valid || !d.Order.IsPermutation(enc.Query.NumRelations()) {
		t.Fatalf("retry wrapper returned structurally invalid order %v", d.Order)
	}
}

func TestRetryRecoversFromTransientFaults(t *testing.T) {
	inner := &scriptBackend{name: "qpu", script: []error{
		&Error{Kind: KindRejected, Backend: "qpu"},
		&Error{Kind: KindAborted, Backend: "qpu"},
		nil,
	}}
	m := service.NewMetrics()
	be := WithRetry(inner, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Metrics: m})
	d, err := be.Solve(context.Background(), testEncoding(t), service.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Valid {
		t.Fatal("recovered solve returned invalid order")
	}
	if got := inner.calls.Load(); got != 3 {
		t.Errorf("inner calls = %d, want 3", got)
	}
	if got := m.Snapshot(nil).Backends["qpu"].Retries; got != 2 {
		t.Errorf("retry counter = %d, want 2", got)
	}
}

func TestRetryDoesNotRetryNonRetryableErrors(t *testing.T) {
	boom := errors.New("config error")
	inner := &scriptBackend{name: "qpu", script: []error{boom, boom, boom}}
	be := WithRetry(inner, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond})
	_, err := be.Solve(context.Background(), testEncoding(t), service.Params{Seed: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the backend error", err)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner calls = %d, want 1 (no retries)", got)
	}
}

// TestRetryRespectsDeadlineBudget pins the tentpole guarantee: the retry
// loop never overshoots the request deadline — backoffs that do not fit
// the remaining budget end the loop instead of sleeping through it.
func TestRetryRespectsDeadlineBudget(t *testing.T) {
	alwaysFail := make([]error, 64)
	for i := range alwaysFail {
		alwaysFail[i] = &Error{Kind: KindRejected, Backend: "qpu"}
	}
	inner := &scriptBackend{name: "qpu", script: alwaysFail}
	be := WithRetry(inner, RetryPolicy{
		MaxAttempts: 64,
		BaseDelay:   20 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
	})
	deadline := 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err := be.Solve(ctx, testEncoding(t), service.Params{Seed: 1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("always-failing backend reported success")
	}
	if elapsed > deadline+25*time.Millisecond {
		t.Errorf("retry loop overshot the %v deadline by %v", deadline, elapsed-deadline)
	}
	if calls := inner.calls.Load(); calls >= 64 {
		t.Errorf("retry loop ran all %d attempts despite the deadline", calls)
	}
}

func TestRetryableClassification(t *testing.T) {
	if !Retryable(&Error{Kind: KindAborted, Backend: "qpu"}) {
		t.Error("classified fault not retryable")
	}
	if Retryable(errors.New("boom")) {
		t.Error("plain error retryable")
	}
	if Retryable(context.DeadlineExceeded) {
		t.Error("deadline retryable")
	}
	if Retryable(ErrBreakerOpen) {
		t.Error("open breaker retryable: retry storms ahoy")
	}
}
