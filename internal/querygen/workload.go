package querygen

import (
	"fmt"
	"math/rand"
	"time"

	"quantumjoin/internal/join"
)

// Deadline classes of the stratified workload. The budgets are chosen
// against the repo's backend latencies at the default 8-relation size:
// tight admits only the instant classical arms, medium admits one
// simulated-quantum solve, loose admits the full portfolio — so a router
// that reads the deadline feature has a real decision to make.
const (
	ClassTight  = "tight"
	ClassMedium = "medium"
	ClassLoose  = "loose"
)

// WorkloadItem is one request of a deadline-stratified workload: a
// generated query plus the deadline budget the caller should impose.
type WorkloadItem struct {
	// Name identifies the cell and replica, e.g. "star/skew0.5/tight/2".
	Name string
	// Class is the deadline class: ClassTight, ClassMedium or ClassLoose.
	Class string
	// Graph is the query-graph shape the item was drawn from.
	Graph GraphType
	// Skew is the cardinality skew the item was drawn with.
	Skew float64
	// Deadline is the per-request budget for this item.
	Deadline time.Duration
	// Seed is the deterministic per-item seed; callers reuse it to seed
	// backend randomness so runs are reproducible end to end.
	Seed int64
	// Query is the generated instance.
	Query *join.Query
}

// WorkloadConfig controls DeadlineStratified.
type WorkloadConfig struct {
	// Relations per query. Default 8.
	Relations int
	// PerCell is the number of instances per (shape, skew, class) cell.
	// Default 2.
	PerCell int
	// Seed is the base seed; per-item seeds are derived from it, so the
	// whole workload is a pure function of the config.
	Seed int64
	// Tight, Medium, Loose override the class budgets.
	// Defaults 25ms, 100ms, 400ms.
	Tight, Medium, Loose time.Duration
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Relations == 0 {
		c.Relations = 8
	}
	if c.PerCell == 0 {
		c.PerCell = 2
	}
	if c.Tight == 0 {
		c.Tight = 25 * time.Millisecond
	}
	if c.Medium == 0 {
		c.Medium = 100 * time.Millisecond
	}
	if c.Loose == 0 {
		c.Loose = 400 * time.Millisecond
	}
	return c
}

// DeadlineStratified generates the mixed-deadline routing workload shared
// by schedbench and hybridbench: every combination of graph shape
// (chain, star, clique, tree), cardinality skew (uniform and 0.5) and
// deadline class (tight, medium, loose), PerCell instances each, using
// the paper-style integer-log parameters (§4.1) so instances match the
// other benches. The result is deterministic for a given config:
// per-item seeds are derived from cfg.Seed and the item's position.
func DeadlineStratified(cfg WorkloadConfig) ([]WorkloadItem, error) {
	cfg = cfg.withDefaults()
	shapes := []GraphType{Chain, Star, Clique, Tree}
	skews := []float64{0, 0.5}
	classes := []struct {
		name   string
		budget time.Duration
	}{
		{ClassTight, cfg.Tight},
		{ClassMedium, cfg.Medium},
		{ClassLoose, cfg.Loose},
	}
	var items []WorkloadItem
	idx := int64(0)
	for _, g := range shapes {
		for _, skew := range skews {
			for _, cl := range classes {
				for rep := 0; rep < cfg.PerCell; rep++ {
					idx++
					// Splitmix-style odd-constant spread keeps per-item
					// streams decorrelated while staying a pure function
					// of (cfg.Seed, position).
					seed := cfg.Seed*1_000_003 + idx*2_654_435_761
					q, err := Generate(Config{
						Relations:  cfg.Relations,
						Graph:      g,
						IntegerLog: true,
						MinLogCard: 1, MaxLogCard: 3,
						MinLogSel: 1, MaxLogSel: 2,
						Skew: skew,
					}, rand.New(rand.NewSource(seed)))
					if err != nil {
						return nil, fmt.Errorf("querygen: workload cell %v/skew%v/%s: %w",
							g, skew, cl.name, err)
					}
					items = append(items, WorkloadItem{
						Name:     fmt.Sprintf("%v/skew%v/%s/%d", g, skew, cl.name, rep),
						Class:    cl.name,
						Graph:    g,
						Skew:     skew,
						Deadline: cl.budget,
						Seed:     seed,
						Query:    q,
					})
				}
			}
		}
	}
	return items, nil
}
