package querygen

import (
	"reflect"
	"testing"
	"time"
)

// TestDeadlineStratifiedDeterministic: the workload is a pure function of
// the config — two calls must produce deeply equal items, and a different
// base seed must produce different queries.
func TestDeadlineStratifiedDeterministic(t *testing.T) {
	cfg := WorkloadConfig{Seed: 7}
	a, err := DeadlineStratified(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeadlineStratified(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different workloads")
	}
	c, err := DeadlineStratified(WorkloadConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var differ bool
	for i := range a {
		if !reflect.DeepEqual(a[i].Query, c[i].Query) {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("changing the base seed did not change any query")
	}
}

// TestDeadlineStratifiedCoverage: every (shape, skew, class) cell is
// present with PerCell replicas, deadlines match their class, and every
// query is valid at the configured size.
func TestDeadlineStratifiedCoverage(t *testing.T) {
	cfg := WorkloadConfig{Relations: 6, PerCell: 2, Seed: 3}
	items, err := DeadlineStratified(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 2 * 3 * cfg.PerCell; len(items) != want {
		t.Fatalf("len(items) = %d, want %d", len(items), want)
	}
	budgets := map[string]time.Duration{
		ClassTight:  25 * time.Millisecond,
		ClassMedium: 100 * time.Millisecond,
		ClassLoose:  400 * time.Millisecond,
	}
	cells := map[string]int{}
	for _, it := range items {
		if it.Query.NumRelations() != cfg.Relations {
			t.Fatalf("%s: %d relations, want %d", it.Name, it.Query.NumRelations(), cfg.Relations)
		}
		if err := it.Query.Validate(); err != nil {
			t.Fatalf("%s: invalid query: %v", it.Name, err)
		}
		if it.Deadline != budgets[it.Class] {
			t.Errorf("%s: deadline %v does not match class %q", it.Name, it.Deadline, it.Class)
		}
		cells[it.Graph.String()+"/"+it.Class]++
	}
	for _, g := range []string{"chain", "star", "clique", "tree"} {
		for _, cl := range []string{ClassTight, ClassMedium, ClassLoose} {
			if got := cells[g+"/"+cl]; got != 2*cfg.PerCell { // two skews per cell
				t.Errorf("cell %s/%s has %d items, want %d", g, cl, got, 2*cfg.PerCell)
			}
		}
	}
}

// TestDeadlineStratifiedBudgetOverrides: custom class budgets flow through.
func TestDeadlineStratifiedBudgetOverrides(t *testing.T) {
	items, err := DeadlineStratified(WorkloadConfig{
		Relations: 4, PerCell: 1, Seed: 1,
		Tight: time.Millisecond, Medium: 2 * time.Millisecond, Loose: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]time.Duration{
		ClassTight: time.Millisecond, ClassMedium: 2 * time.Millisecond, ClassLoose: 3 * time.Millisecond,
	}
	for _, it := range items {
		if it.Deadline != want[it.Class] {
			t.Errorf("%s: deadline %v, want %v", it.Name, it.Deadline, want[it.Class])
		}
	}
}
