package querygen

import (
	"math"
	"math/rand"
	"testing"
)

func TestGraphShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []GraphType{Chain, Star, Cycle, Clique, Tree} {
		for n := 3; n <= 8; n++ {
			q, err := Generate(Config{Relations: n, Graph: g}, rng)
			if err != nil {
				t.Fatalf("%v n=%d: %v", g, n, err)
			}
			if got, want := q.NumPredicates(), g.NumPredicates(n); got != want {
				t.Errorf("%v n=%d: %d predicates, want %d", g, n, got, want)
			}
			if q.NumRelations() != n {
				t.Errorf("%v n=%d: got %d relations", g, n, q.NumRelations())
			}
		}
	}
}

func TestStarCentre(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q, err := Generate(Config{Relations: 6, Graph: Star}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range q.Predicates {
		if p.R1 != 0 {
			t.Errorf("star predicate %d does not touch the centre: %+v", i, p)
		}
	}
}

func TestCycleClosesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q, err := Generate(Config{Relations: 5, Graph: Cycle}, rng)
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, 5)
	for _, p := range q.Predicates {
		deg[p.R1]++
		deg[p.R2]++
	}
	for i, d := range deg {
		if d != 2 {
			t.Errorf("cycle relation %d has degree %d, want 2", i, d)
		}
	}
}

func TestIntegerLog(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q, err := Generate(Config{Relations: 10, Graph: Clique, IntegerLog: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q.Relations {
		lc := q.LogCard(i)
		if math.Abs(lc-math.Round(lc)) > 1e-9 {
			t.Errorf("relation %d: log card %v not integer", i, lc)
		}
		if lc < 1 || lc > 5 {
			t.Errorf("relation %d: log card %v outside [1,5]", i, lc)
		}
	}
	for i := range q.Predicates {
		ls := q.LogSel(i)
		if math.Abs(ls-math.Round(ls)) > 1e-9 {
			t.Errorf("predicate %d: log sel %v not integer", i, ls)
		}
		if ls > 0 || ls < -2 {
			t.Errorf("predicate %d: log sel %v outside [-2,0]", i, ls)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := Generate(Config{Relations: 1, Graph: Chain}, rng); err == nil {
		t.Error("accepted 1 relation")
	}
	if _, err := Generate(Config{Relations: 2, Graph: Cycle}, rng); err == nil {
		t.Error("accepted 2-relation cycle")
	}
	if _, err := Generate(Config{Relations: 3, Graph: GraphType(99)}, rng); err == nil {
		t.Error("accepted unknown graph type")
	}
	if _, err := Generate(Config{Relations: 3, Skew: 1}, rng); err == nil {
		t.Error("accepted skew 1")
	}
	if _, err := Generate(Config{Relations: 3, Skew: -0.1}, rng); err == nil {
		t.Error("accepted negative skew")
	}
	if _, err := Generate(Config{Relations: 3, Correlation: 1.5}, rng); err == nil {
		t.Error("accepted correlation > 1")
	}
}

// Tree graphs must be connected and acyclic: n-1 predicates, every
// relation reachable from relation 0.
func TestTreeConnectedAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for n := 3; n <= 40; n += 7 {
		q, err := Generate(Config{Relations: n, Graph: Tree}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if q.NumPredicates() != n-1 {
			t.Fatalf("n=%d: %d predicates, want %d", n, q.NumPredicates(), n-1)
		}
		adj := make([][]int, n)
		for _, p := range q.Predicates {
			adj[p.R1] = append(adj[p.R1], p.R2)
			adj[p.R2] = append(adj[p.R2], p.R1)
		}
		seen := make([]bool, n)
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					count++
					stack = append(stack, w)
				}
			}
		}
		if count != n {
			t.Errorf("n=%d: only %d relations reachable", n, count)
		}
	}
}

// Skewed draws stay within bounds and concentrate mass near MinLogCard:
// with heavy skew the median log-cardinality must sit in the lower half
// of the range.
func TestSkewConcentratesLow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q, err := Generate(Config{Relations: 60, Graph: Chain, Skew: 0.8, MinLogCard: 1, MaxLogCard: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var logs []float64
	for i := range q.Relations {
		lc := q.LogCard(i)
		if lc < 1-1e-9 || lc > 5+1e-9 {
			t.Fatalf("relation %d: log card %v outside [1,5]", i, lc)
		}
		logs = append(logs, lc)
	}
	below := 0
	for _, lc := range logs {
		if lc < 3 {
			below++
		}
	}
	if below <= len(logs)/2 {
		t.Errorf("skew 0.8: only %d/%d relations below the range midpoint", below, len(logs))
	}
}

// Full correlation makes every predicate a foreign-key join: selectivity
// exactly 1/max of the endpoint cardinalities.
func TestCorrelationForeignKeySelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q, err := Generate(Config{Relations: 12, Graph: Tree, Correlation: 1, IntegerLog: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range q.Predicates {
		want := 1 / math.Max(q.Relations[p.R1].Card, q.Relations[p.R2].Card)
		if p.Sel != want {
			t.Errorf("predicate %d: sel %v, want FK estimate %v", i, p.Sel, want)
		}
	}
}

func TestPaperInstanceQubitLadderPreconditions(t *testing.T) {
	for p := 0; p <= 3; p++ {
		q, err := PaperInstance(p)
		if err != nil {
			t.Fatal(err)
		}
		if q.NumPredicates() != p {
			t.Fatalf("PaperInstance(%d) has %d predicates", p, q.NumPredicates())
		}
		for i := range q.Relations {
			if q.Relations[i].Card != 10 {
				t.Fatalf("PaperInstance(%d): card %v, want 10", p, q.Relations[i].Card)
			}
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("PaperInstance(%d) invalid: %v", p, err)
		}
	}
	if _, err := PaperInstance(4); err == nil {
		t.Error("PaperInstance(4) should fail")
	}
}

func TestGraphTypeString(t *testing.T) {
	cases := map[GraphType]string{Chain: "chain", Star: "star", Cycle: "cycle", Clique: "clique", Tree: "tree"}
	for g, want := range cases {
		if g.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(g), g.String(), want)
		}
	}
	if GraphType(42).String() == "" {
		t.Error("unknown graph type should still render")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, _ := Generate(Config{Relations: 6, Graph: Chain}, rand.New(rand.NewSource(9)))
	b, _ := Generate(Config{Relations: 6, Graph: Chain}, rand.New(rand.NewSource(9)))
	for i := range a.Relations {
		if a.Relations[i].Card != b.Relations[i].Card {
			t.Fatal("same seed produced different cardinalities")
		}
	}
	for i := range a.Predicates {
		if a.Predicates[i].Sel != b.Predicates[i].Sel {
			t.Fatal("same seed produced different selectivities")
		}
	}
}
