// Package querygen generates random join ordering instances following the
// methodology of Steinbrunn et al. (as used via Trummer's query optimizer
// library in the paper's §4.1): queries with a chosen query-graph type
// (chain, star, cycle, clique, tree), cardinalities drawn log-uniformly
// (optionally skewed toward small relations with a heavy tail), and
// selectivities drawn log-uniformly from (0, 1] (optionally correlated
// with the joined cardinalities as foreign-key joins).
//
// The paper's QPU experiments use the IntegerLog option: integer base-10
// logarithmic cardinalities and selectivities, which avoids discretisation
// issues for continuous slack variables and makes qubit counts exactly
// reproducible (§4.1).
package querygen

import (
	"fmt"
	"math"
	"math/rand"

	"quantumjoin/internal/join"
)

// GraphType selects the shape of the query graph.
type GraphType int

const (
	// Chain connects relation i to i+1.
	Chain GraphType = iota
	// Star connects relation 0 to every other relation.
	Star
	// Cycle is a chain plus an edge closing the loop; it has one more
	// predicate than chain/star and hence the largest qubit demand (§6.1).
	Cycle
	// Clique connects every pair of relations.
	Clique
	// Tree connects relation i (i >= 1) to a uniformly random earlier
	// relation, producing a random recursive tree: the connected acyclic
	// middle ground between chain (depth n) and star (depth 1) that large
	// analytical schemas tend to resemble.
	Tree
)

// String implements fmt.Stringer.
func (g GraphType) String() string {
	switch g {
	case Chain:
		return "chain"
	case Star:
		return "star"
	case Cycle:
		return "cycle"
	case Clique:
		return "clique"
	case Tree:
		return "tree"
	default:
		return fmt.Sprintf("GraphType(%d)", int(g))
	}
}

// NumPredicates returns the number of predicates a graph of this type has
// for n relations.
func (g GraphType) NumPredicates(n int) int {
	switch g {
	case Chain, Star, Tree:
		return n - 1
	case Cycle:
		return n
	case Clique:
		return n * (n - 1) / 2
	default:
		return 0
	}
}

// Config controls instance generation.
type Config struct {
	Relations int
	Graph     GraphType
	// IntegerLog forces integer log10 cardinalities and selectivities
	// (cards in {10^MinLogCard .. 10^MaxLogCard}, sels in
	// {10^-MaxLogSel .. 10^-MinLogSel}).
	IntegerLog bool
	// MinLogCard/MaxLogCard bound log10 of relation cardinalities.
	// Defaults: 1 and 5 (10 .. 100000, as in Steinbrunn et al.).
	MinLogCard, MaxLogCard float64
	// MinLogSel/MaxLogSel bound -log10 of selectivities.
	// Defaults: 0 and 2 (1 .. 0.01).
	MinLogSel, MaxLogSel float64
	// Skew in [0, 1) tilts the cardinality distribution: 0 keeps the
	// log-uniform draw, larger values concentrate mass near MinLogCard
	// with a heavy tail toward MaxLogCard (the u^(1/(1−Skew)) transform) —
	// the "few huge fact tables, many small dimensions" shape of real
	// analytical schemas.
	Skew float64
	// Correlation in [0, 1] is the probability that a predicate is
	// foreign-key-like: its selectivity becomes 1/max(card(R1), card(R2))
	// (the textbook FK-join estimate) instead of an independent log-uniform
	// draw, correlating selectivities with the cardinalities they join.
	Correlation float64
}

func (c Config) withDefaults() Config {
	if c.MaxLogCard == 0 {
		c.MinLogCard, c.MaxLogCard = 1, 5
	}
	if c.MaxLogSel == 0 {
		c.MinLogSel, c.MaxLogSel = 0, 2
	}
	return c
}

// Generate creates a random query instance.
func Generate(cfg Config, rng *rand.Rand) (*join.Query, error) {
	cfg = cfg.withDefaults()
	n := cfg.Relations
	if n < 2 {
		return nil, fmt.Errorf("querygen: need at least 2 relations, got %d", n)
	}
	if cfg.Graph == Cycle && n < 3 {
		return nil, fmt.Errorf("querygen: cycle query needs at least 3 relations, got %d", n)
	}
	if cfg.Skew < 0 || cfg.Skew >= 1 {
		return nil, fmt.Errorf("querygen: skew %v outside [0, 1)", cfg.Skew)
	}
	if cfg.Correlation < 0 || cfg.Correlation > 1 {
		return nil, fmt.Errorf("querygen: correlation %v outside [0, 1]", cfg.Correlation)
	}
	q := &join.Query{}
	for i := 0; i < n; i++ {
		u := rng.Float64()
		if cfg.Skew > 0 {
			u = math.Pow(u, 1/(1-cfg.Skew))
		}
		lc := cfg.MinLogCard + u*(cfg.MaxLogCard-cfg.MinLogCard)
		if cfg.IntegerLog {
			lc = math.Round(lc)
		}
		q.Relations = append(q.Relations, join.Relation{
			Name: fmt.Sprintf("R%d", i),
			Card: math.Pow(10, lc),
		})
	}
	sel := func(a, b int) float64 {
		if cfg.Correlation > 0 && rng.Float64() < cfg.Correlation {
			// Foreign-key join: each row of the smaller side matches its
			// one parent — selectivity 1/max(card_a, card_b). Integer-log
			// cards keep this on the integer-log grid automatically.
			return 1 / math.Max(q.Relations[a].Card, q.Relations[b].Card)
		}
		ls := cfg.MinLogSel + rng.Float64()*(cfg.MaxLogSel-cfg.MinLogSel)
		if cfg.IntegerLog {
			ls = math.Round(ls)
		}
		return math.Pow(10, -ls)
	}
	addPred := func(a, b int) {
		q.Predicates = append(q.Predicates, join.Predicate{R1: a, R2: b, Sel: sel(a, b)})
	}
	switch cfg.Graph {
	case Chain:
		for i := 0; i < n-1; i++ {
			addPred(i, i+1)
		}
	case Star:
		for i := 1; i < n; i++ {
			addPred(0, i)
		}
	case Cycle:
		for i := 0; i < n-1; i++ {
			addPred(i, i+1)
		}
		addPred(n-1, 0)
	case Clique:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				addPred(i, j)
			}
		}
	case Tree:
		for i := 1; i < n; i++ {
			addPred(rng.Intn(i), i)
		}
	default:
		return nil, fmt.Errorf("querygen: unknown graph type %v", cfg.Graph)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("querygen: generated invalid query: %w", err)
	}
	return q, nil
}

// PaperInstance returns the canonical three-relation instance matching the
// qubit counts reported in §4.1 (18 qubits for zero predicates, +3 per
// predicate, +3 per decimal digit of discretisation precision): three
// relations of cardinality 10 and the requested number of predicates with
// selectivity 0.1 arranged as in the paper's scenarios (0/1 predicates:
// cross products needed; 2: chain; 3: cycle).
func PaperInstance(predicates int) (*join.Query, error) {
	if predicates < 0 || predicates > 3 {
		return nil, fmt.Errorf("querygen: paper instance supports 0..3 predicates, got %d", predicates)
	}
	q := &join.Query{
		Relations: []join.Relation{
			{Name: "R", Card: 10}, {Name: "S", Card: 10}, {Name: "T", Card: 10},
		},
	}
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}}
	for i := 0; i < predicates; i++ {
		q.Predicates = append(q.Predicates, join.Predicate{R1: edges[i][0], R2: edges[i][1], Sel: 0.1})
	}
	return q, nil
}
