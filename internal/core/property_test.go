package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"quantumjoin/internal/join"
	"quantumjoin/internal/querygen"
)

// Property: for any random integer-log query and any join order, the
// canonical encoding of the order is MILP-feasible and its
// slack-completed QUBO energy equals B times the approximated cost
// (constraint penalty exactly zero).
func TestQuickEncodeOrderZeroPenalty(t *testing.T) {
	f := func(seed int64, nRaw, gRaw, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw%4) // 3..6 relations
		g := querygen.GraphType(gRaw % 4)
		r := 1 + int(rRaw%3)
		q, err := querygen.Generate(querygen.Config{
			Relations: n, Graph: g, IntegerLog: true,
			MinLogCard: 1, MaxLogCard: 3, MinLogSel: 1, MaxLogSel: 2,
		}, rng)
		if err != nil {
			return true // cycle with n<3 cannot occur (n>=3)
		}
		enc, err := Encode(q, Options{Thresholds: DefaultThresholds(q, r), Omega: 1})
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		order := join.Order(rng.Perm(n))
		x, err := enc.EncodeOrder(order)
		if err != nil {
			t.Logf("encode order: %v", err)
			return false
		}
		if !enc.FeasibleMILP(x, 1e-9) {
			t.Logf("order %v infeasible", order)
			return false
		}
		full, err := enc.CompleteSlacks(x)
		if err != nil {
			return false
		}
		for _, res := range enc.Residuals(full) {
			if res > 1e-9 {
				t.Logf("residual %v", res)
				return false
			}
		}
		approx, err := enc.ApproxCost(order)
		if err != nil {
			return false
		}
		// Tolerance scales with the penalty weight A: the zero-residual
		// cancellation happens between terms of magnitude ~A.
		tol := 1e-9*enc.PenaltyA*float64(enc.QUBO.N()) + 1e-6*(1+math.Abs(approx))
		if math.Abs(enc.QUBO.Value(full)-enc.PenaltyB*approx) > tol {
			t.Logf("energy %v != B*approx %v", enc.QUBO.Value(full), enc.PenaltyB*approx)
			return false
		}
		// Round trip.
		d := enc.Decode(x)
		if !d.Valid {
			return false
		}
		for i := range order {
			if d.Order[i] != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Decode never panics on arbitrary bit patterns, and whenever it
// reports Valid the order is a permutation whose cost matches the query.
func TestQuickDecodeTotal(t *testing.T) {
	q, err := querygen.PaperInstance(2)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Encode(q, Options{Thresholds: []float64{10}, Omega: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]bool, enc.QUBO.N())
		for i := range x {
			x[i] = rng.Intn(2) == 0
		}
		d := enc.Decode(x)
		if !d.Valid {
			return true
		}
		if !d.Order.IsPermutation(3) {
			return false
		}
		return math.Abs(d.Cost-q.Cost(d.Order)) <= 1e-9*d.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the Theorem 5.3 bound is monotone — more thresholds or finer
// precision never lower it, and it always dominates the built encoding.
func TestQuickBoundMonotone(t *testing.T) {
	f := func(seed int64, nRaw, rRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw%6)
		r := 1 + int(rRaw%4)
		d := int(dRaw % 4)
		q, err := querygen.Generate(querygen.Config{
			Relations: n, Graph: querygen.Cycle, IntegerLog: true,
			MinLogCard: 1, MaxLogCard: 4, MinLogSel: 1, MaxLogSel: 2,
		}, rng)
		if err != nil {
			return false
		}
		omega := math.Pow(10, -float64(d))
		b := UpperBound(q, r, omega).Total()
		if UpperBound(q, r+1, omega).Total() < b {
			return false
		}
		if UpperBound(q, r, omega/10).Total() < b {
			return false
		}
		enc, err := Encode(q, Options{Thresholds: DefaultThresholds(q, r), Omega: omega})
		if err != nil {
			return false
		}
		return enc.NumQubits() <= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: pruning preserves the feasible set of join orders — any order
// feasible in the original model is feasible in the pruned one and vice
// versa (both encode exactly the valid left-deep trees).
func TestQuickPruningPreservesOrders(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw%3)
		q, err := querygen.Generate(querygen.Config{
			Relations: n, Graph: querygen.Chain, IntegerLog: true,
			MinLogCard: 1, MaxLogCard: 3, MinLogSel: 1, MaxLogSel: 2,
		}, rng)
		if err != nil {
			return false
		}
		th := DefaultThresholds(q, 1)
		pruned, err := Encode(q, Options{Thresholds: th, Omega: 1})
		if err != nil {
			return false
		}
		orig, err := Encode(q, Options{Thresholds: th, Omega: 1, Original: true})
		if err != nil {
			return false
		}
		order := join.Order(rng.Perm(n))
		xp, err := pruned.EncodeOrder(order)
		if err != nil {
			return false
		}
		xo, err := orig.EncodeOrder(order)
		if err != nil {
			return false
		}
		return pruned.FeasibleMILP(xp, 1e-9) && orig.FeasibleMILP(xo, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
