package core

import (
	"math"
	"strings"
	"testing"

	"quantumjoin/internal/join"
)

// TestEncodeRejectsInvalidStatistics is the regression suite for the
// input-validation contract: Encode must reject selectivities outside
// (0, 1] and cardinalities below 1 (including NaN/Inf) with a descriptive
// error instead of silently producing degenerate or NaN QUBO coefficients.
func TestEncodeRejectsInvalidStatistics(t *testing.T) {
	build := func(card1, card2, sel float64) *join.Query {
		return &join.Query{
			Relations:  []join.Relation{{Name: "a", Card: card1}, {Name: "b", Card: card2}},
			Predicates: []join.Predicate{{R1: 0, R2: 1, Sel: sel}},
		}
	}
	cases := []struct {
		name string
		q    *join.Query
		want string // substring the error must mention
	}{
		{"zero selectivity", build(10, 20, 0), "selectivity"},
		{"negative selectivity", build(10, 20, -0.5), "selectivity"},
		{"selectivity above one", build(10, 20, 1.5), "selectivity"},
		{"NaN selectivity", build(10, 20, math.NaN()), "selectivity"},
		{"zero cardinality", build(0, 20, 0.5), "cardinality"},
		{"negative cardinality", build(-3, 20, 0.5), "cardinality"},
		{"NaN cardinality", build(math.NaN(), 20, 0.5), "cardinality"},
		{"infinite cardinality", build(math.Inf(1), 20, 0.5), "cardinality"},
	}
	opts := Options{Thresholds: []float64{100}}
	for _, tc := range cases {
		enc, err := Encode(tc.q, opts)
		if err == nil {
			t.Errorf("%s: Encode accepted the query (qubits=%d)", tc.name, enc.NumQubits())
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestEncodeRejectsNilQuery(t *testing.T) {
	if _, err := Encode(nil, Options{Thresholds: []float64{10}}); err == nil {
		t.Fatal("Encode accepted a nil query")
	}
}

// TestEncodeCoefficientsFinite pins the positive side of the contract:
// valid statistics never yield NaN/Inf coefficients.
func TestEncodeCoefficientsFinite(t *testing.T) {
	q := &join.Query{
		Relations: []join.Relation{
			{Name: "a", Card: 10}, {Name: "b", Card: 1e6}, {Name: "c", Card: 3},
		},
		Predicates: []join.Predicate{
			{R1: 0, R2: 1, Sel: 1e-6},
			{R1: 1, R2: 2, Sel: 1}, // boundary selectivity is legal
		},
	}
	enc, err := Encode(q, Options{Thresholds: DefaultThresholds(q, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < enc.QUBO.N(); i++ {
		if v := enc.QUBO.Linear(i); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("linear coefficient %d is %v", i, v)
		}
	}
	for _, p := range enc.QUBO.QuadTerms() {
		if v := enc.QUBO.Quad(p.I, p.J); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("quadratic coefficient (%d,%d) is %v", p.I, p.J, v)
		}
	}
}
