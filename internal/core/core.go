// Package core implements the paper's primary contribution: the first QUBO
// formulation of the join ordering problem (§3), obtained in three steps:
//
//  1. a mixed-integer linear program for left-deep join trees with cross
//     products, after Trummer & Koch, manually pruned of redundant
//     variables and constraints (§3.1–3.2, Table 1),
//  2. a binary integer linear program (BILP) obtained by converting
//     inequalities to equalities with binary-discretised slack variables
//     at precision ω (§3.3),
//  3. the penalty-form QUBO H = A·H_constraints + B·H_cost (§3.4).
//
// It also implements the solution post-processing of §3.5 (decoding a join
// order from the tii variables and judging validity/optimality) and the
// formal qubit-demand analysis of §5 (Lemma 5.1, Lemma 5.2, Theorem 5.3).
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/join"
	"quantumjoin/internal/linprog"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/qubo"
)

// VarKind labels the semantic role of a model variable.
type VarKind int

const (
	// TIO marks a "table in outer operand" variable tio[t][j].
	TIO VarKind = iota
	// TII marks a "table in inner operand" variable tii[t][j].
	TII
	// PAO marks a "predicate applicable in outer operand" variable pao[p][j].
	PAO
	// CTO marks a "cardinality threshold reached by outer operand" variable
	// cto[r][j].
	CTO
)

// String implements fmt.Stringer.
func (k VarKind) String() string {
	switch k {
	case TIO:
		return "tio"
	case TII:
		return "tii"
	case PAO:
		return "pao"
	case CTO:
		return "cto"
	default:
		return fmt.Sprintf("VarKind(%d)", int(k))
	}
}

// VarInfo describes one decision variable of the MILP/BILP model. Exactly
// one of T/P/R is meaningful depending on Kind; J is the join index.
type VarInfo struct {
	Kind VarKind
	T    int // relation index (TIO, TII)
	P    int // predicate index (PAO)
	R    int // threshold index (CTO)
	J    int // join index
}

// Options configure the encoding.
type Options struct {
	// Thresholds are the cardinality threshold values θ_r used to
	// approximate intermediate result cardinalities (§3.2). Must be
	// positive and non-empty; use DefaultThresholds for a sensible spread.
	Thresholds []float64
	// Omega is the discretisation precision ω for continuous slack
	// variables (1 = integer precision, 0.1 = one decimal digit, ...).
	// Defaults to 1.
	Omega float64
	// Original disables the paper's manual pruning (§3.2, Table 1) and
	// builds the unpruned Trummer/Koch-style model instead; used for the
	// Table 1 comparison.
	Original bool
	// LogObjective uses log10(θ_r) instead of θ_r as the objective weight
	// of cto variables. The paper adds the plain threshold value; the log
	// variant is provided as an ablation because it dramatically shrinks
	// the coefficient range that annealers must represent.
	LogObjective bool
	// PenaltyEps is the ε added to the minimal penalty weight A (§3.4).
	// Defaults to 0.5.
	PenaltyEps float64
	// PenaltyA and PenaltyB override the automatically derived penalty
	// weights when non-zero.
	PenaltyA, PenaltyB float64
	// Compact selects the reduced-variable encoding after Nayak et al.:
	// the outer-operand variables tio[t][j] for j > 0 are eliminated by
	// substituting the recursion tio[t][j] = tio[t][0] + Σ_{j'<j} tii[t][j'],
	// which drops T·(J−1) decision variables and all J·T recursion equality
	// constraints. Operand disjointness collapses to one constraint per
	// relation (tio[t][0] + Σ_j tii[t][j] <= 1). Decoding is unchanged (it
	// reads only tii), and valid orders reach exactly zero penalty residual
	// just like the standard encoding. Incompatible with Original.
	Compact bool
}

func (o Options) withDefaults() Options {
	if o.Omega == 0 {
		o.Omega = 1
	}
	if o.PenaltyEps == 0 {
		o.PenaltyEps = 0.5
	}
	return o
}

// Encoding is a fully built QUBO encoding of a join ordering problem along
// with the intermediate models and the variable metadata needed to decode
// QPU samples back into join orders.
type Encoding struct {
	Query *join.Query
	Opts  Options

	// MILP is the (possibly pruned) model with inequality constraints.
	MILP *linprog.Model
	// BILP is the equality-only model after slack discretisation.
	BILP *linprog.Model
	// QUBO is the final penalty-form objective.
	QUBO *qubo.QUBO

	// Infos describes the decision variables (indices < len(Infos));
	// variables beyond are slack bits.
	Infos []VarInfo

	// PenaltyA and PenaltyB are the weights actually used.
	PenaltyA, PenaltyB float64

	tii [][]int // tii[t][j] -> variable index
	tio [][]int // tio[t][j] -> variable index

	// Cached classical optimum of Query (see Optimal in decode.go).
	optOnce sync.Once
	optRes  classical.Result
	optErr  error
}

// NumQubits returns the number of logical qubits the encoding needs (one
// per binary variable, §3.4).
func (e *Encoding) NumQubits() int { return e.QUBO.N() }

// NumDecisionVars returns the number of problem-encoding variables
// (excluding slack bits).
func (e *Encoding) NumDecisionVars() int { return len(e.Infos) }

// TIIVar returns the BILP variable index of tii[t][j].
func (e *Encoding) TIIVar(t, j int) int { return e.tii[t][j] }

// TIOVar returns the BILP variable index of tio[t][j]. The compact
// encoding only materialises tio[t][0] (later outer memberships are prefix
// sums over tii); asking for j > 0 there panics.
func (e *Encoding) TIOVar(t, j int) int { return e.tio[t][j] }

// MaxMonolithicRelations caps the relation count of a single monolithic
// QUBO encoding. Constraint lengths grow linearly and the squared penalty
// terms quadratically with the relation count, so beyond this point one
// giant QUBO is slower to build than it is useful to solve. Larger queries
// go through graph-partition decomposition instead (the decomp backend),
// which solves QUBO-sized parts and stitches the per-part orders.
const MaxMonolithicRelations = 32

// Encode builds the QUBO encoding for the query under the given options.
// Invalid instances — selectivities outside (0, 1], cardinalities below 1,
// NaN/Inf statistics — are rejected with a descriptive error rather than
// silently producing degenerate or NaN QUBO coefficients.
func Encode(q *join.Query, opts Options) (*Encoding, error) {
	return EncodeContext(context.Background(), q, opts)
}

// EncodeContext is Encode with per-stage tracing: when ctx carries an
// active obs span, the MILP construction, BILP slack discretisation, and
// QUBO penalty conversion each get a child span recording the model size
// they produced (variables, constraints, qubits).
func EncodeContext(ctx context.Context, q *join.Query, opts Options) (*Encoding, error) {
	if q == nil {
		return nil, fmt.Errorf("core: cannot encode nil query")
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("core: cannot encode invalid query: %w", err)
	}
	if n := q.NumRelations(); n > MaxMonolithicRelations {
		return nil, fmt.Errorf("core: %d relations exceeds the %d-relation monolithic encoding limit; use the decomp backend, which partitions the join graph into QUBO-sized parts and stitches the per-part orders", n, MaxMonolithicRelations)
	}
	opts = opts.withDefaults()
	if opts.Compact && opts.Original {
		return nil, fmt.Errorf("core: Compact and Original encodings are mutually exclusive (the compact substitution presumes the pruned model)")
	}
	if len(opts.Thresholds) == 0 {
		return nil, fmt.Errorf("core: at least one threshold value is required")
	}
	for _, th := range opts.Thresholds {
		if th <= 0 || math.IsNaN(th) || math.IsInf(th, 0) {
			return nil, fmt.Errorf("core: invalid threshold value %v", th)
		}
	}
	if opts.Omega <= 0 {
		return nil, fmt.Errorf("core: discretisation precision ω must be positive, got %v", opts.Omega)
	}

	e := &Encoding{Query: q, Opts: opts}
	_, milpSpan := obs.StartSpan(ctx, "encode.milp")
	err := e.buildMILP()
	if err == nil {
		milpSpan.SetAttr("vars", e.MILP.NumVars())
		milpSpan.SetAttr("constraints", len(e.MILP.Cons))
	}
	milpSpan.End(err)
	if err != nil {
		return nil, err
	}

	_, bilpSpan := obs.StartSpan(ctx, "encode.bilp")
	eq, err := e.MILP.ToEquality(opts.Omega)
	if err == nil {
		bilpSpan.SetAttr("vars", eq.NumVars())
	}
	bilpSpan.End(err)
	if err != nil {
		return nil, err
	}
	e.BILP = eq
	a, b := opts.PenaltyA, opts.PenaltyB
	if b == 0 {
		b = 1
	}
	if a == 0 {
		a = eq.PenaltyWeight(opts.Omega, opts.PenaltyEps) * b
	}
	e.PenaltyA, e.PenaltyB = a, b

	_, quboSpan := obs.StartSpan(ctx, "encode.qubo")
	qb, err := eq.ToQUBO(a, b, opts.Omega)
	if err == nil {
		quboSpan.SetAttr("qubits", qb.N())
	}
	quboSpan.End(err)
	if err != nil {
		return nil, err
	}
	e.QUBO = qb
	return e, nil
}

// buildMILP constructs the (pruned or original) MILP model of §3.2.
func (e *Encoding) buildMILP() error {
	q := e.Query
	T := q.NumRelations()
	J := q.NumJoins()
	P := q.NumPredicates()
	R := len(e.Opts.Thresholds)
	m := &linprog.Model{}

	addVar := func(info VarInfo, name string) int {
		v := m.AddVar(name)
		e.Infos = append(e.Infos, info)
		return v
	}

	// The compact encoding keeps only tio[t][0] and substitutes
	// tio[t][j] = tio[t][0] + Σ_{j'<j} tii[t][j'] everywhere else; see
	// outerTerms below and the Options.Compact doc.
	outerJoins := J
	if e.Opts.Compact {
		outerJoins = 1
	}
	e.tio = make([][]int, T)
	e.tii = make([][]int, T)
	for t := 0; t < T; t++ {
		e.tio[t] = make([]int, outerJoins)
		e.tii[t] = make([]int, J)
		for j := 0; j < J; j++ {
			// Keep the standard model's interleaved variable order exactly
			// as before the compact variant existed: seeded stochastic
			// solvers are sensitive to variable indexing.
			if j < outerJoins {
				e.tio[t][j] = addVar(VarInfo{Kind: TIO, T: t, J: j}, fmt.Sprintf("tio[%d][%d]", t, j))
			}
			e.tii[t][j] = addVar(VarInfo{Kind: TII, T: t, J: j}, fmt.Sprintf("tii[%d][%d]", t, j))
		}
	}
	// outerTerms appends coef·tio[t][j] to dst: one variable in the
	// standard model, the prefix expansion in the compact model.
	outerTerms := func(dst []linprog.Term, t, j int, coef float64) []linprog.Term {
		if !e.Opts.Compact {
			return append(dst, linprog.Term{Var: e.tio[t][j], Coef: coef})
		}
		dst = append(dst, linprog.Term{Var: e.tio[t][0], Coef: coef})
		for jj := 0; jj < j; jj++ {
			dst = append(dst, linprog.Term{Var: e.tii[t][jj], Coef: coef})
		}
		return dst
	}
	// Threshold constraints are discretised at precision ω; snap log10 θ_r
	// onto the ω grid up front so that valid solutions reach exactly zero
	// residual (the paper's §3.4 coefficient rounding, applied at model
	// construction).
	logTheta := make([]float64, R)
	for r := 0; r < R; r++ {
		logTheta[r] = math.Round(math.Log10(e.Opts.Thresholds[r])/e.Opts.Omega) * e.Opts.Omega
	}

	paoStart := 0
	if !e.Opts.Original {
		paoStart = 1 // pao[p][0] pruned: join 0's outer operand is one relation
	}
	pao := make([][]int, P)
	for p := 0; p < P; p++ {
		pao[p] = make([]int, J)
		for j := range pao[p] {
			pao[p][j] = -1
		}
		for j := paoStart; j < J; j++ {
			pao[p][j] = addVar(VarInfo{Kind: PAO, P: p, J: j}, fmt.Sprintf("pao[%d][%d]", p, j))
		}
	}
	ctoStart := 0
	if !e.Opts.Original {
		ctoStart = 1 // cto[r][0] pruned: cost counts intermediate results only
	}
	cto := make([][]int, R)
	for r := 0; r < R; r++ {
		cto[r] = make([]int, J)
		for j := range cto[r] {
			cto[r][j] = -1
		}
		for j := ctoStart; j < J; j++ {
			if !e.Opts.Original && CJMax(q, j) <= logTheta[r]+1e-12 {
				continue // prunable: the threshold can never be exceeded (§3.2)
			}
			cto[r][j] = addVar(VarInfo{Kind: CTO, R: r, J: j}, fmt.Sprintf("cto[%d][%d]", r, j))
		}
	}

	// One relation per inner leaf: Σ_t tii[t][j] = 1 for every join.
	for j := 0; j < J; j++ {
		c := linprog.Constraint{Name: fmt.Sprintf("one-inner[%d]", j), Sense: linprog.EQ, RHS: 1}
		for t := 0; t < T; t++ {
			c.Terms = append(c.Terms, linprog.Term{Var: e.tii[t][j], Coef: 1})
		}
		m.AddConstraint(c)
	}
	// Exactly one relation is the first outer leaf: Σ_t tio[t][0] = 1.
	{
		c := linprog.Constraint{Name: "one-outer[0]", Sense: linprog.EQ, RHS: 1}
		for t := 0; t < T; t++ {
			c.Terms = append(c.Terms, linprog.Term{Var: e.tio[t][0], Coef: 1})
		}
		m.AddConstraint(c)
	}
	if !e.Opts.Compact {
		// Outer operand recursion (Eq. 3): tio[t][j] = tii[t][j-1] + tio[t][j-1].
		// The compact encoding has no recursion constraints: the recursion
		// is substituted into every tio[t][j] occurrence instead.
		for j := 1; j < J; j++ {
			for t := 0; t < T; t++ {
				m.AddConstraint(linprog.Constraint{
					Name:  fmt.Sprintf("recur[%d][%d]", t, j),
					Sense: linprog.EQ, RHS: 0,
					Terms: []linprog.Term{
						{Var: e.tio[t][j], Coef: 1},
						{Var: e.tii[t][j-1], Coef: -1},
						{Var: e.tio[t][j-1], Coef: -1},
					},
				})
			}
		}
	}
	// Operand disjointness (Eq. 4): pruned model needs it only for the final
	// join; the original model carries it for every join. Under the compact
	// substitution the final-join form expands to
	// tio[t][0] + Σ_j tii[t][j] <= 1 — each relation appears at most once
	// across the first outer leaf and all inner leaves, which together with
	// one-inner/one-outer forces exactly once (a permutation).
	disjointJoins := []int{J - 1}
	if e.Opts.Original {
		disjointJoins = disjointJoins[:0]
		for j := 0; j < J; j++ {
			disjointJoins = append(disjointJoins, j)
		}
	}
	for _, j := range disjointJoins {
		for t := 0; t < T; t++ {
			c := linprog.Constraint{
				Name:  fmt.Sprintf("disjoint[%d][%d]", t, j),
				Sense: linprog.LE, RHS: 1, SlackBound: 1, Integral: true,
			}
			c.Terms = outerTerms(c.Terms, t, j, 1)
			c.Terms = append(c.Terms, linprog.Term{Var: e.tii[t][j], Coef: 1})
			m.AddConstraint(c)
		}
	}
	// Predicate applicability (Eq. 5): pao[p][j] <= tio of both endpoints.
	// (Compact: the slack bound 1 covers every feasible assignment — the
	// expanded tio value is 0 or 1 there by disjointness; infeasible
	// assignments just accrue extra penalty.)
	for p := 0; p < P; p++ {
		for j := paoStart; j < J; j++ {
			for _, endpoint := range []int{q.Predicates[p].R1, q.Predicates[p].R2} {
				c := linprog.Constraint{
					Name:  fmt.Sprintf("pao[%d][%d]<=tio[%d]", p, j, endpoint),
					Sense: linprog.LE, RHS: 0, SlackBound: 1, Integral: true,
					Terms: []linprog.Term{{Var: pao[p][j], Coef: 1}},
				}
				c.Terms = outerTerms(c.Terms, endpoint, j, -1)
				m.AddConstraint(c)
			}
		}
	}
	// Cardinality threshold activation (Eq. 7):
	// c_j − cto[r][j]·∞_rj <= log10 θ_r, with
	// c_j = Σ_t log10(Card t)·tio[t][j] + Σ_p log10(Sel p)·pao[p][j],
	// ∞_rj at its lower bound c_jmax − log10 θ_r, and the slack bounded by
	// c_jmax (Lemma 5.1).
	for r := 0; r < R; r++ {
		lt := logTheta[r]
		for j := ctoStart; j < J; j++ {
			if cto[r][j] < 0 {
				continue
			}
			cjmax := CJMax(q, j)
			inf := cjmax - lt
			slackBound := cjmax
			if inf < 0 { // only possible in the unpruned model
				inf = 0
				slackBound = lt
			}
			c := linprog.Constraint{
				Name:  fmt.Sprintf("threshold[%d][%d]", r, j),
				Sense: linprog.LE, RHS: lt, SlackBound: slackBound,
			}
			for t := 0; t < T; t++ {
				if lc := q.LogCard(t); lc != 0 {
					c.Terms = outerTerms(c.Terms, t, j, lc)
				}
			}
			for p := 0; p < P; p++ {
				if pao[p][j] < 0 {
					continue
				}
				if ls := q.LogSel(p); ls != 0 {
					c.Terms = append(c.Terms, linprog.Term{Var: pao[p][j], Coef: ls})
				}
			}
			c.Terms = append(c.Terms, linprog.Term{Var: cto[r][j], Coef: -inf})
			m.AddConstraint(c)
			// Objective: pay θ_r whenever the threshold is exceeded.
			w := e.Opts.Thresholds[r]
			if e.Opts.LogObjective {
				w = lt
			}
			m.AddObjectiveTerm(cto[r][j], w)
		}
	}
	if err := m.Validate(); err != nil {
		return err
	}
	e.MILP = m
	return nil
}

// snappedLogThreshold returns log10 θ_r rounded to the ω grid, matching
// the value used when the constraints were built.
func (e *Encoding) snappedLogThreshold(r int) float64 {
	return math.Round(math.Log10(e.Opts.Thresholds[r])/e.Opts.Omega) * e.Opts.Omega
}

// DefaultThresholds returns R threshold values spread geometrically (evenly
// in log10 space) between the smallest base-relation cardinality and the
// largest possible intermediate cardinality of the query. The choice of
// thresholds governs the cost-approximation accuracy (§3.2, Example 3.3).
func DefaultThresholds(q *join.Query, r int) []float64 {
	if r <= 0 {
		return nil
	}
	maxLog := CJMax(q, q.NumJoins()-1)
	minLog := math.Inf(1)
	for t := 0; t < q.NumRelations(); t++ {
		if lc := q.LogCard(t); lc < minLog {
			minLog = lc
		}
	}
	if minLog >= maxLog {
		minLog = maxLog / 2
	}
	out := make([]float64, r)
	for i := 0; i < r; i++ {
		frac := float64(i+1) / float64(r+1)
		out[i] = math.Pow(10, minLog+frac*(maxLog-minLog))
	}
	return out
}

// sortedLogCards returns log10 cardinalities in descending order.
func sortedLogCards(q *join.Query) []float64 {
	ls := make([]float64, q.NumRelations())
	for t := range ls {
		ls[t] = q.LogCard(t)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ls)))
	return ls
}

// CJMax returns the maximum logarithmic (base 10) cardinality of the outer
// operand of join j (Lemma 5.2): the sum of the j+1 largest logarithmic
// relation cardinalities, since the outer operand of join j contains
// exactly j+1 relations and predicates can only shrink it.
func CJMax(q *join.Query, j int) float64 {
	ls := sortedLogCards(q)
	n := j + 1
	if n > len(ls) {
		n = len(ls)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += ls[i]
	}
	return s
}
