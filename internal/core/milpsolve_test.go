package core

import (
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/querygen"
)

// The MILP branch-and-bound optimum must achieve the same approximated
// cost as exhaustive enumeration over join orders.
func TestSolveMILPMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(2)
		g := querygen.GraphType(trial % 3)
		q, err := querygen.Generate(querygen.Config{
			Relations: n, Graph: g, IntegerLog: true,
			MinLogCard: 1, MaxLogCard: 3, MinLogSel: 1, MaxLogSel: 2,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := Encode(q, Options{Thresholds: DefaultThresholds(q, 2), Omega: 1})
		if err != nil {
			t.Fatal(err)
		}
		milp, err := enc.SolveMILP()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		exact, err := enc.SolveExact()
		if err != nil {
			t.Fatal(err)
		}
		am, err := enc.ApproxCost(milp.Order)
		if err != nil {
			t.Fatal(err)
		}
		ae, err := enc.ApproxCost(exact.Order)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(am-ae) > 1e-6*(1+math.Abs(ae)) {
			t.Fatalf("trial %d (%v, n=%d): MILP approx cost %v != exhaustive %v (orders %v vs %v)",
				trial, g, n, am, ae, milp.Order, exact.Order)
		}
	}
}

func TestSolveMILPPaperInstance(t *testing.T) {
	q, err := querygen.PaperInstance(1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Encode(q, Options{Thresholds: []float64{10}, Omega: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := enc.SolveMILP()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := enc.IsOptimal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !opt {
		t.Fatalf("MILP solution %v (cost %v) not optimal", d.Order, d.Cost)
	}
}
