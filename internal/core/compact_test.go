package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/join"
	"quantumjoin/internal/querygen"
)

func compactPair(t *testing.T, q *join.Query, r int) (std, cmp *Encoding) {
	t.Helper()
	th := DefaultThresholds(q, r)
	std, err := Encode(q, Options{Thresholds: th, Omega: 1})
	if err != nil {
		t.Fatalf("standard encode: %v", err)
	}
	cmp, err = Encode(q, Options{Thresholds: th, Omega: 1, Compact: true})
	if err != nil {
		t.Fatalf("compact encode: %v", err)
	}
	return std, cmp
}

// The compact encoding must drop exactly T·(J−1) decision variables (the
// eliminated tio[t][j>0] columns) and all T·(J−1) recursion constraints,
// and therefore strictly fewer qubits on any query with 3+ relations.
func TestCompactVariableReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{3, 5, 8, 10} {
		for g := querygen.GraphType(0); g < 4; g++ {
			q, err := querygen.Generate(querygen.Config{
				Relations: n, Graph: g, IntegerLog: true,
				MinLogCard: 1, MaxLogCard: 3, MinLogSel: 1, MaxLogSel: 2,
			}, rng)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			std, cmp := compactPair(t, q, 2)
			wantDrop := n * (q.NumJoins() - 1)
			gotDrop := std.NumDecisionVars() - cmp.NumDecisionVars()
			if gotDrop != wantDrop {
				t.Errorf("n=%d %v: decision var drop = %d, want %d", n, g, gotDrop, wantDrop)
			}
			if cmp.NumQubits() >= std.NumQubits() {
				t.Errorf("n=%d %v: compact qubits %d not below standard %d", n, g, cmp.NumQubits(), std.NumQubits())
			}
			if got, want := len(cmp.MILP.Cons), len(std.MILP.Cons)-n*(q.NumJoins()-1); got != want {
				t.Errorf("n=%d %v: compact constraints = %d, want %d", n, g, got, want)
			}
		}
	}
}

// Equivalence on small instances: branch-and-bound over the compact MILP
// must reach the same optimum as over the standard MILP, and both must
// equal the classical DP optimum — the decoded orders cost bit-identically.
func TestCompactMILPOptimumMatchesStandardAndDP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{4, 5} {
		for g := querygen.GraphType(0); g < 4; g++ {
			q, err := querygen.Generate(querygen.Config{
				Relations: n, Graph: g, IntegerLog: true,
				MinLogCard: 1, MaxLogCard: 3, MinLogSel: 1, MaxLogSel: 2,
			}, rng)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			std, cmp := compactPair(t, q, 3)
			ds, err := std.SolveMILP()
			if err != nil {
				t.Fatalf("standard MILP solve: %v", err)
			}
			dc, err := cmp.SolveMILP()
			if err != nil {
				t.Fatalf("compact MILP solve: %v", err)
			}
			if !ds.Valid || !dc.Valid {
				t.Fatalf("n=%d %v: MILP solutions not valid (std %v, compact %v)", n, g, ds.Valid, dc.Valid)
			}
			as, err := std.ApproxCost(ds.Order)
			if err != nil {
				t.Fatal(err)
			}
			ac, err := cmp.ApproxCost(dc.Order)
			if err != nil {
				t.Fatal(err)
			}
			// Both encodings minimise the same threshold-approximated
			// objective; their optima must agree bit-identically.
			if as != ac {
				t.Errorf("n=%d %v: approx optimum differs: standard %v, compact %v", n, g, as, ac)
			}
			// Each decoded order must either attain the exact DP optimum
			// or tie the DP-optimal order on the approximated objective
			// (the threshold grid can alias orders; both encodings then
			// legitimately pick any tied order).
			opt, err := classical.Optimal(q)
			if err != nil {
				t.Fatal(err)
			}
			for name, pair := range map[string]struct {
				e *Encoding
				d Decoded
			}{"standard": {std, ds}, "compact": {cmp, dc}} {
				ok, err := pair.e.IsOptimal(pair.d)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					continue
				}
				ao, err := pair.e.ApproxCost(opt.Order)
				if err != nil {
					t.Fatal(err)
				}
				ad, err := pair.e.ApproxCost(pair.d.Order)
				if err != nil {
					t.Fatal(err)
				}
				if ad != ao {
					t.Errorf("n=%d %v: %s optimum cost %v (approx %v) vs DP %v (approx %v)",
						n, g, name, pair.d.Cost, ad, opt.Cost, ao)
				}
			}
		}
	}
}

// Exhaustive-energy equivalence: enumerating every join order, the QUBO
// energy argmin of the compact encoding decodes to the same exact cost as
// the standard encoding's argmin and the DP optimum (bit-identical costs).
func TestCompactEnergyArgminMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{4, 6} {
		for g := querygen.GraphType(0); g < 4; g++ {
			q, err := querygen.Generate(querygen.Config{
				Relations: n, Graph: g, IntegerLog: true,
				MinLogCard: 1, MaxLogCard: 3, MinLogSel: 1, MaxLogSel: 2,
			}, rng)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			_, cmp := compactPair(t, q, 4)
			best := Decoded{}
			bestEnergy := math.Inf(1)
			perm := make(join.Order, n)
			var rec func(depth int, used uint64)
			rec = func(depth int, used uint64) {
				if depth == n {
					o := append(join.Order(nil), perm...)
					x, err := cmp.EncodeOrder(o)
					if err != nil {
						t.Fatal(err)
					}
					full, err := cmp.CompleteSlacks(x)
					if err != nil {
						t.Fatal(err)
					}
					d := cmp.Decode(full)
					if !d.Valid {
						t.Fatalf("round-trip decode invalid for %v", o)
					}
					if d.Order.IsPermutation(n) == false {
						t.Fatalf("decoded order %v not a permutation", d.Order)
					}
					for i := range o {
						if d.Order[i] != o[i] {
							t.Fatalf("decode(%v) = %v", o, d.Order)
						}
					}
					if d.Energy < bestEnergy {
						bestEnergy = d.Energy
						best = d
					}
					return
				}
				for t0 := 0; t0 < n; t0++ {
					if used&(1<<uint(t0)) != 0 {
						continue
					}
					perm[depth] = t0
					rec(depth+1, used|1<<uint(t0))
				}
			}
			rec(0, 0)
			opt, err := classical.Optimal(q)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := cmp.IsOptimal(best)
			if err != nil {
				t.Fatal(err)
			}
			// With 4 thresholds on these tiny integer-log instances the
			// approximation is fine enough that the energy argmin lands on
			// a DP-optimal order; if the grid ever aliases two orders the
			// argmin must still tie the optimum's approximated cost.
			if !ok {
				ae, err := cmp.ApproxCost(best.Order)
				if err != nil {
					t.Fatal(err)
				}
				ao, err := cmp.ApproxCost(opt.Order)
				if err != nil {
					t.Fatal(err)
				}
				if ae != ao {
					t.Errorf("n=%d %v: energy argmin cost %v (approx %v) vs DP %v (approx %v)",
						n, g, best.Cost, ae, opt.Cost, ao)
				}
			}
		}
	}
}

// Property: any join order encodes to a zero-residual compact assignment
// whose QUBO energy is exactly B·ApproxCost — the compact constraint
// penalty vanishes on every valid order, as in the standard encoding.
func TestQuickCompactEncodeOrderZeroPenalty(t *testing.T) {
	f := func(seed int64, nRaw, gRaw, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw%5) // 3..7 relations
		g := querygen.GraphType(gRaw % 4)
		r := 1 + int(rRaw%3)
		q, err := querygen.Generate(querygen.Config{
			Relations: n, Graph: g, IntegerLog: true,
			MinLogCard: 1, MaxLogCard: 3, MinLogSel: 1, MaxLogSel: 2,
		}, rng)
		if err != nil {
			return true
		}
		enc, err := Encode(q, Options{Thresholds: DefaultThresholds(q, r), Omega: 1, Compact: true})
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		order := join.Order(rng.Perm(n))
		x, err := enc.EncodeOrder(order)
		if err != nil {
			t.Logf("encode order: %v", err)
			return false
		}
		if !enc.FeasibleMILP(x, 1e-9) {
			t.Logf("order %v infeasible under compact encoding", order)
			return false
		}
		full, err := enc.CompleteSlacks(x)
		if err != nil {
			t.Logf("complete slacks: %v", err)
			return false
		}
		for _, res := range enc.Residuals(full) {
			if res > 1e-9 {
				t.Logf("residual %v", res)
				return false
			}
		}
		approx, err := enc.ApproxCost(order)
		if err != nil {
			return false
		}
		energy := enc.QUBO.Value(full)
		tol := 1e-9 * (1 + math.Abs(enc.PenaltyA))
		if math.Abs(energy-enc.PenaltyB*approx) > tol {
			t.Logf("energy %v != B·approx %v", energy, enc.PenaltyB*approx)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
