package core

import (
	"quantumjoin/internal/join"
	"quantumjoin/internal/linprog"
)

// QubitBound is the breakdown of the logical-qubit upper bound of
// Theorem 5.3 for a concrete query.
type QubitBound struct {
	// TIOTII counts the 2TJ table-in-operand variables.
	TIOTII int
	// PAO counts the P(J-1) predicate-applicability variables.
	PAO int
	// CTO counts the R(J-1) threshold variables (upper bound, no pruning).
	CTO int
	// DisjointSlack counts the T binary slacks of Eq. 4.
	DisjointSlack int
	// PAOSlack counts the 2P(J-1) binary slacks of Eq. 5.
	PAOSlack int
	// ThresholdSlack counts the R·Σ_j (⌊log2(c_jmax/ω)⌋+1) discretised
	// slack bits of Eq. 7 (Lemma 5.1 bound).
	ThresholdSlack int
}

// Total is the overall upper bound n on binary variables / logical qubits.
func (b QubitBound) Total() int {
	return b.TIOTII + b.PAO + b.CTO + b.DisjointSlack + b.PAOSlack + b.ThresholdSlack
}

// UpperBound evaluates the Theorem 5.3 upper bound
//
//	n <= 2TJ + (3P+R)(J−1) + T + R Σ_{j=1}^{J−1} (⌊log2(c_jmax/ω)⌋ + 1)
//
// for a query with R threshold values at discretisation precision omega.
func UpperBound(q *join.Query, r int, omega float64) QubitBound {
	t := q.NumRelations()
	j := q.NumJoins()
	p := q.NumPredicates()
	b := QubitBound{
		TIOTII:        2 * t * j,
		PAO:           p * (j - 1),
		CTO:           r * (j - 1),
		DisjointSlack: t,
		PAOSlack:      2 * p * (j - 1),
	}
	for jj := 1; jj < j; jj++ {
		b.ThresholdSlack += r * linprog.SlackBits(CJMax(q, jj), omega)
	}
	return b
}

// ModelCounts summarises variable and constraint counts per type for the
// Table 1 comparison of the original and pruned models.
type ModelCounts struct {
	// Constraint counts.
	DisjointCons  int // tio + tii <= 1
	PAOCons       int // pao <= tio (both endpoints combined count)
	ThresholdCons int // Eq. 7
	// Variable counts.
	PAOVars int
	CTOVars int
}

// ExpectedCounts returns the closed-form Table 1 counts for a query with R
// thresholds: the original model versus the pruned model. The pruned
// threshold rows are upper bounds (<=) because instance-specific pruning
// of cto variables may remove more (§3.2).
func ExpectedCounts(t, j, p, r int, original bool) ModelCounts {
	if original {
		return ModelCounts{
			DisjointCons:  t * j,
			PAOCons:       2 * p * j,
			ThresholdCons: r * j,
			PAOVars:       p * j,
			CTOVars:       r * j,
		}
	}
	return ModelCounts{
		DisjointCons:  t,
		PAOCons:       2 * p * (j - 1),
		ThresholdCons: r * (j - 1),
		PAOVars:       p * (j - 1),
		CTOVars:       r * (j - 1),
	}
}

// Counts tallies the actual per-type variable and constraint counts of a
// built encoding, for verifying the Table 1 formulas.
func (e *Encoding) Counts() ModelCounts {
	var c ModelCounts
	for _, info := range e.Infos {
		switch info.Kind {
		case PAO:
			c.PAOVars++
		case CTO:
			c.CTOVars++
		}
	}
	for _, con := range e.MILP.Cons {
		switch {
		case len(con.Name) >= 8 && con.Name[:8] == "disjoint":
			c.DisjointCons++
		case len(con.Name) >= 3 && con.Name[:3] == "pao":
			c.PAOCons++
		case len(con.Name) >= 9 && con.Name[:9] == "threshold":
			c.ThresholdCons++
		}
	}
	return c
}
