package core

import (
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/join"
	"quantumjoin/internal/querygen"
)

func paperOptions() Options {
	return Options{Thresholds: []float64{10}, Omega: 1}
}

func mustEncodePaper(t *testing.T, predicates int, omega float64) *Encoding {
	t.Helper()
	q, err := querygen.PaperInstance(predicates)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Encode(q, Options{Thresholds: []float64{10}, Omega: omega})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// The paper's §4.1 qubit ladder: 3 relations, one threshold. Varying the
// number of predicates 0..3 at ω=1 gives 18, 21, 24, 27 qubits; varying
// the discretisation precision over 0..3 decimal digits at 0 predicates
// gives the same ladder.
func TestPaperQubitLadder(t *testing.T) {
	for p, want := range []int{18, 21, 24, 27} {
		e := mustEncodePaper(t, p, 1)
		if got := e.NumQubits(); got != want {
			t.Errorf("predicates=%d: %d qubits, want %d", p, got, want)
		}
	}
	for d, want := range []int{18, 21, 24, 27} {
		omega := math.Pow(10, -float64(d))
		e := mustEncodePaper(t, 0, omega)
		if got := e.NumQubits(); got != want {
			t.Errorf("ω=%v: %d qubits, want %d", omega, got, want)
		}
	}
}

func TestEncodeOrderRoundTrip(t *testing.T) {
	for p := 0; p <= 3; p++ {
		e := mustEncodePaper(t, p, 1)
		orders := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		for _, o := range orders {
			x, err := e.EncodeOrder(join.Order(o))
			if err != nil {
				t.Fatal(err)
			}
			if !e.FeasibleMILP(x, 1e-9) {
				t.Fatalf("p=%d: EncodeOrder(%v) infeasible in MILP", p, o)
			}
			d := e.Decode(x)
			if !d.Valid {
				t.Fatalf("p=%d: Decode(EncodeOrder(%v)) invalid", p, o)
			}
			for i := range o {
				if d.Order[i] != o[i] {
					t.Fatalf("p=%d: round trip %v -> %v", p, o, d.Order)
				}
			}
		}
	}
}

func TestCompleteSlacksZeroPenalty(t *testing.T) {
	for p := 0; p <= 3; p++ {
		e := mustEncodePaper(t, p, 1)
		x, err := e.EncodeOrder(join.Order{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		full, err := e.CompleteSlacks(x)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range e.Residuals(full) {
			if r > 1e-9 {
				t.Errorf("p=%d: constraint %d (%s) residual %v after slack completion",
					p, i, e.BILP.Cons[i].Name, r)
			}
		}
		// Energy must equal B times the approximated cost (penalty part 0).
		approx, err := e.ApproxCost(join.Order{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if got := e.QUBO.Value(full); math.Abs(got-e.PenaltyB*approx) > 1e-6 {
			t.Errorf("p=%d: energy %v, want %v", p, got, e.PenaltyB*approx)
		}
	}
}

// The QUBO global minimum must decode to a valid join order that is
// optimal with respect to the threshold-approximated cost, and for the
// paper instance (where the approximation separates the optimum) also
// optimal in exact cost.
func TestQUBOMinimumIsOptimalOrder(t *testing.T) {
	for _, p := range []int{0, 1} { // 18 and 21 qubits: brute-forceable
		e := mustEncodePaper(t, p, 1)
		sol, err := e.QUBO.BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		d := e.Decode(sol.Assignment)
		if !d.Valid {
			t.Fatalf("p=%d: QUBO argmin decodes invalid", p)
		}
		opt, err := e.IsOptimal(d)
		if err != nil {
			t.Fatal(err)
		}
		if !opt {
			t.Fatalf("p=%d: QUBO argmin decodes to %v (cost %v), not optimal", p, d.Order, d.Cost)
		}
		// The minimum energy must equal B·(optimal approximated cost).
		exact, err := e.SolveExact()
		if err != nil {
			t.Fatal(err)
		}
		wantApprox, err := e.ApproxCost(exact.Order)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sol.Value-e.PenaltyB*wantApprox) > 1e-6 {
			t.Errorf("p=%d: min energy %v, want %v", p, sol.Value, e.PenaltyB*wantApprox)
		}
	}
}

func TestInvalidAssignmentsHaveHigherEnergy(t *testing.T) {
	e := mustEncodePaper(t, 1, 1)
	sol, err := e.QUBO.BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any single tii bit of the optimum must strictly raise energy.
	for tt := 0; tt < 3; tt++ {
		for j := 0; j < 2; j++ {
			x := append([]bool(nil), sol.Assignment...)
			x[e.TIIVar(tt, j)] = !x[e.TIIVar(tt, j)]
			if e.QUBO.Value(x) <= sol.Value+1e-9 {
				t.Errorf("flipping tii[%d][%d] did not raise energy", tt, j)
			}
		}
	}
}

func TestTable1Counts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{3, 5, 8} {
		q, err := querygen.Generate(querygen.Config{Relations: n, Graph: querygen.Cycle, IntegerLog: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		thresholds := DefaultThresholds(q, 2)
		for _, original := range []bool{false, true} {
			e, err := Encode(q, Options{Thresholds: thresholds, Omega: 1, Original: original})
			if err != nil {
				t.Fatal(err)
			}
			got := e.Counts()
			want := ExpectedCounts(q.NumRelations(), q.NumJoins(), q.NumPredicates(), 2, original)
			if got.DisjointCons != want.DisjointCons {
				t.Errorf("n=%d original=%v: disjoint cons %d, want %d", n, original, got.DisjointCons, want.DisjointCons)
			}
			if got.PAOCons != want.PAOCons {
				t.Errorf("n=%d original=%v: pao cons %d, want %d", n, original, got.PAOCons, want.PAOCons)
			}
			if got.PAOVars != want.PAOVars {
				t.Errorf("n=%d original=%v: pao vars %d, want %d", n, original, got.PAOVars, want.PAOVars)
			}
			// Threshold rows are upper bounds for the pruned model.
			if original && got.ThresholdCons != want.ThresholdCons {
				t.Errorf("n=%d original: threshold cons %d, want %d", n, got.ThresholdCons, want.ThresholdCons)
			}
			if !original && (got.ThresholdCons > want.ThresholdCons || got.CTOVars > want.CTOVars) {
				t.Errorf("n=%d pruned: threshold cons %d vars %d exceed bounds %d/%d",
					n, got.ThresholdCons, got.CTOVars, want.ThresholdCons, want.CTOVars)
			}
		}
	}
}

func TestPrunedNeverLargerThanOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(6)
		g := querygen.GraphType(rng.Intn(4))
		if g == querygen.Cycle && n < 3 {
			n = 3
		}
		q, err := querygen.Generate(querygen.Config{Relations: n, Graph: g, IntegerLog: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		th := DefaultThresholds(q, 1+rng.Intn(3))
		pruned, err := Encode(q, Options{Thresholds: th, Omega: 1})
		if err != nil {
			t.Fatal(err)
		}
		orig, err := Encode(q, Options{Thresholds: th, Omega: 1, Original: true})
		if err != nil {
			t.Fatal(err)
		}
		if pruned.NumQubits() > orig.NumQubits() {
			t.Errorf("pruned model larger than original: %d > %d", pruned.NumQubits(), orig.NumQubits())
		}
	}
}

func TestUpperBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(8)
		q, err := querygen.Generate(querygen.Config{Relations: n, Graph: querygen.GraphType(rng.Intn(4)), IntegerLog: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		r := 1 + rng.Intn(3)
		omega := math.Pow(10, -float64(rng.Intn(3)))
		th := DefaultThresholds(q, r)
		e, err := Encode(q, Options{Thresholds: th, Omega: omega})
		if err != nil {
			t.Fatal(err)
		}
		bound := UpperBound(q, r, omega).Total()
		if e.NumQubits() > bound {
			t.Errorf("n=%d r=%d ω=%v: %d qubits exceed Theorem 5.3 bound %d",
				n, r, omega, e.NumQubits(), bound)
		}
	}
}

func TestCJMax(t *testing.T) {
	q := &join.Query{Relations: []join.Relation{
		{Card: 1000}, {Card: 10}, {Card: 100},
	}}
	// join 0: outer has 1 relation, max log card = 3.
	if got := CJMax(q, 0); got != 3 {
		t.Errorf("CJMax(0) = %v, want 3", got)
	}
	// join 1: outer has 2 relations, max = 3 + 2.
	if got := CJMax(q, 1); got != 5 {
		t.Errorf("CJMax(1) = %v, want 5", got)
	}
	// Clamp beyond all relations.
	if got := CJMax(q, 10); got != 6 {
		t.Errorf("CJMax(10) = %v, want 6", got)
	}
}

func TestDefaultThresholds(t *testing.T) {
	q, _ := querygen.PaperInstance(2)
	th := DefaultThresholds(q, 3)
	if len(th) != 3 {
		t.Fatalf("got %d thresholds", len(th))
	}
	for i := 1; i < len(th); i++ {
		if th[i] <= th[i-1] {
			t.Errorf("thresholds not increasing: %v", th)
		}
	}
	if th[0] <= 1 {
		t.Errorf("first threshold %v not > 1", th[0])
	}
	if DefaultThresholds(q, 0) != nil {
		t.Error("R=0 should return nil")
	}
}

func TestEncodeErrors(t *testing.T) {
	q, _ := querygen.PaperInstance(0)
	if _, err := Encode(q, Options{}); err == nil {
		t.Error("accepted empty thresholds")
	}
	if _, err := Encode(q, Options{Thresholds: []float64{-1}}); err == nil {
		t.Error("accepted negative threshold")
	}
	if _, err := Encode(q, Options{Thresholds: []float64{10}, Omega: -2}); err == nil {
		t.Error("accepted negative ω")
	}
	bad := &join.Query{Relations: []join.Relation{{Card: 10}}}
	if _, err := Encode(bad, paperOptions()); err == nil {
		t.Error("accepted invalid query")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	e := mustEncodePaper(t, 0, 1)
	// All zeros: no inner relation anywhere.
	if d := e.Decode(make([]bool, e.NumQubits())); d.Valid {
		t.Error("all-zero assignment decoded as valid")
	}
	// Two inner relations for join 0.
	x := make([]bool, e.NumQubits())
	x[e.TIIVar(0, 0)] = true
	x[e.TIIVar(1, 0)] = true
	x[e.TIIVar(2, 1)] = true
	if d := e.Decode(x); d.Valid {
		t.Error("ambiguous assignment decoded as valid")
	}
	// Same relation inner in both joins.
	y := make([]bool, e.NumQubits())
	y[e.TIIVar(1, 0)] = true
	y[e.TIIVar(1, 1)] = true
	if d := e.Decode(y); d.Valid {
		t.Error("repeated inner relation decoded as valid")
	}
}

func TestBestValid(t *testing.T) {
	e := mustEncodePaper(t, 2, 1) // chain query: R-S, S-T
	good, err := e.EncodeOrder(join.Order{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	goodFull, _ := e.CompleteSlacks(good)
	bad := make([]bool, e.NumQubits())
	worse, _ := e.EncodeOrder(join.Order{0, 2, 1})
	worseFull, _ := e.CompleteSlacks(worse)
	best, valid, ok := e.BestValid([][]bool{bad, worseFull, goodFull})
	if !ok || valid != 2 {
		t.Fatalf("BestValid: ok=%v valid=%d", ok, valid)
	}
	if best.Order[0] != 0 || best.Order[1] != 1 {
		t.Fatalf("BestValid picked %v", best.Order)
	}
}

// The decoded optimum of the QUBO with fine enough thresholds must agree
// with the classical DP optimum on random instances.
func TestSolveExactMatchesClassicalWithFineThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		q, err := querygen.Generate(querygen.Config{Relations: 4, Graph: querygen.Chain, IntegerLog: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Many thresholds: the step approximation orders costs correctly.
		e, err := Encode(q, Options{Thresholds: DefaultThresholds(q, 12), Omega: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.SolveExact()
		if err != nil {
			t.Fatal(err)
		}
		opt, err := classical.OptimalCost(q)
		if err != nil {
			t.Fatal(err)
		}
		// The approximation cannot do better than the true optimum, and
		// with 12 thresholds it should be within a factor ~10 of it.
		if got.Cost < opt*(1-1e-9) {
			t.Fatalf("approximate optimum %v beats true optimum %v", got.Cost, opt)
		}
		if got.Cost > opt*100 {
			t.Errorf("approximate optimum %v far from true optimum %v", got.Cost, opt)
		}
	}
}

func TestLogObjectiveShrinksCoefficients(t *testing.T) {
	q, _ := querygen.PaperInstance(2)
	th := []float64{10} // kept (c_jmax = 2 > log10 θ = 1), objective weight 10 vs 1
	lin, err := Encode(q, Options{Thresholds: th, Omega: 1})
	if err != nil {
		t.Fatal(err)
	}
	logE, err := Encode(q, Options{Thresholds: th, Omega: 1, LogObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if logE.QUBO.MaxAbsCoefficient() >= lin.QUBO.MaxAbsCoefficient() {
		t.Errorf("log objective did not shrink coefficient range: %v vs %v",
			logE.QUBO.MaxAbsCoefficient(), lin.QUBO.MaxAbsCoefficient())
	}
}

func TestVarKindString(t *testing.T) {
	for k, want := range map[VarKind]string{TIO: "tio", TII: "tii", PAO: "pao", CTO: "cto"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if VarKind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
