package core

import (
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/querygen"
)

// TestDecoderMatchesDecode pins the zero-alloc decoder against the
// allocating reference on valid orders, random (mostly invalid) samples,
// and reuse across encodings of different sizes.
func TestDecoderMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var dec Decoder
	for _, preds := range []int{0, 2} {
		q, err := querygen.PaperInstance(preds)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Encode(q, paperOptions())
		if err != nil {
			t.Fatal(err)
		}
		samples := make([][]bool, 0, 40)
		for s := 0; s < 32; s++ {
			x := make([]bool, e.QUBO.N())
			for i := range x {
				x[i] = rng.Intn(2) == 0
			}
			samples = append(samples, x)
		}
		// Mix in valid encodings so the best-tracking path is exercised.
		for _, o := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
			x, err := e.EncodeOrder(o)
			if err != nil {
				t.Fatal(err)
			}
			samples = append(samples, x)
		}
		var got Decoded
		for si, x := range samples {
			want := e.Decode(x)
			dec.DecodeInto(e, x, &got)
			if got.Valid != want.Valid || got.Cost != want.Cost || got.Energy != want.Energy {
				t.Fatalf("preds=%d sample=%d: DecodeInto %+v != Decode %+v", preds, si, got, want)
			}
			if want.Valid {
				if len(got.Order) != len(want.Order) {
					t.Fatalf("preds=%d sample=%d: order lengths differ", preds, si)
				}
				for i := range want.Order {
					if got.Order[i] != want.Order[i] {
						t.Fatalf("preds=%d sample=%d: orders differ at %d", preds, si, i)
					}
				}
			}
		}
		wantBest, wantValid, wantOK := e.BestValid(samples)
		var gotBest Decoded
		gotValid, gotOK := dec.BestValidInto(e, samples, &gotBest)
		if gotValid != wantValid || gotOK != wantOK {
			t.Fatalf("preds=%d: BestValidInto (%d,%v) != BestValid (%d,%v)", preds, gotValid, gotOK, wantValid, wantOK)
		}
		if wantOK {
			if gotBest.Cost != wantBest.Cost || len(gotBest.Order) != len(wantBest.Order) {
				t.Fatalf("preds=%d: best %+v != %+v", preds, gotBest, wantBest)
			}
			for i := range wantBest.Order {
				if gotBest.Order[i] != wantBest.Order[i] {
					t.Fatalf("preds=%d: best orders differ at %d", preds, i)
				}
			}
		}
	}
}

// TestEncodingOptimalCached checks the cached DP optimum agrees with a
// direct classical solve and that IsOptimal routes through it.
func TestEncodingOptimalCached(t *testing.T) {
	q, err := querygen.PaperInstance(2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Encode(q, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := classical.Optimal(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := e.Optimal()
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost {
			t.Fatalf("cached optimal cost %v != %v", got.Cost, want.Cost)
		}
	}
	ok, err := e.IsOptimal(Decoded{Valid: true, Cost: want.Cost})
	if err != nil || !ok {
		t.Fatalf("optimal cost not recognised: ok=%v err=%v", ok, err)
	}
	ok, err = e.IsOptimal(Decoded{Valid: true, Cost: want.Cost * (1 + 1e-3)})
	if err != nil || ok {
		t.Fatalf("clearly suboptimal cost recognised as optimal: ok=%v err=%v", ok, err)
	}
}

// TestDecoderZeroAllocSteadyState asserts the warm decode path allocates
// nothing once the scratch has grown to the encoding's size.
func TestDecoderZeroAllocSteadyState(t *testing.T) {
	q, err := querygen.PaperInstance(1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Encode(q, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.EncodeOrder([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	full := make([]bool, e.QUBO.N())
	copy(full, x)
	// Warm the QUBO's term views outside the measured region.
	_ = e.QUBO.Value(full)
	var dec Decoder
	var d Decoded
	dec.DecodeInto(e, full, &d)
	allocs := testing.AllocsPerRun(100, func() {
		dec.DecodeInto(e, full, &d)
	})
	if allocs != 0 {
		t.Fatalf("warm DecodeInto allocates %v per run, want 0", allocs)
	}
	if !d.Valid || math.IsNaN(d.Cost) {
		t.Fatal("warm decode produced invalid result")
	}
}
