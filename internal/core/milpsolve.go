package core

import (
	"context"
	"fmt"

	"quantumjoin/internal/linprog"
)

// SolveMILP solves the (pruned) join-ordering MILP model exactly with the
// LP-relaxation branch-and-bound solver — the classical solution pathway
// of Trummer and Koch that the paper's formulation derives from (§3.1).
// Unlike SolveExact (which enumerates permutations), this scales with the
// strength of the LP relaxation rather than T! and works directly on the
// inequality model, before any slack discretisation.
func (e *Encoding) SolveMILP() (Decoded, error) {
	return e.SolveMILPContext(context.Background())
}

// SolveMILPContext is SolveMILP with cancellation: the branch-and-bound
// search checks the context at every node, so a request deadline cuts deep
// searches short with ErrDeadlineExceeded instead of running to completion.
func (e *Encoding) SolveMILPContext(ctx context.Context) (Decoded, error) {
	res, err := e.MILP.SolveBnBContext(ctx, linprog.BnBOptions{})
	if err != nil {
		return Decoded{}, err
	}
	if !res.Feasible {
		return Decoded{}, fmt.Errorf("core: MILP model infeasible (%d nodes)", res.Nodes)
	}
	d := e.Decode(res.X)
	if !d.Valid {
		return Decoded{}, fmt.Errorf("core: MILP optimum decoded to an invalid join order")
	}
	return d, nil
}
