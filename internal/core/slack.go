package core

import (
	"fmt"
	"math"
)

// CompleteSlacks extends an assignment of the decision variables to a full
// QUBO assignment by choosing, for every equality constraint of the BILP,
// the slack bits that best absorb the residual RHS − LHS. For assignments
// that are feasible in the original inequality model the completed
// assignment has (up to discretisation) zero constraint penalty; this is
// the canonical embedding of a classical solution into the QUBO space
// (used for verifying encodings and for warm-starting samplers).
func (e *Encoding) CompleteSlacks(decision []bool) ([]bool, error) {
	nd := e.NumDecisionVars()
	if len(decision) != nd {
		return nil, fmt.Errorf("core: got %d decision variables, want %d", len(decision), nd)
	}
	full := make([]bool, e.QUBO.N())
	copy(full, decision)
	for _, c := range e.BILP.Cons {
		// Partition terms into decision part and slack bits (slack indices
		// are >= nd and appear with positive power-of-two weights).
		residual := c.RHS
		type bit struct {
			v int
			w float64
		}
		var bits []bit
		for _, t := range c.Terms {
			if t.Var < nd {
				if full[t.Var] {
					residual -= t.Coef
				}
			} else {
				bits = append(bits, bit{t.Var, t.Coef})
			}
		}
		// Greedy binary expansion, largest weight first (weights are
		// ω·2^k, so this is exact when the residual is representable).
		for i := len(bits) - 1; i >= 0; i-- {
			if bits[i].w <= residual+1e-9 && residual > 0 {
				full[bits[i].v] = true
				residual -= bits[i].w
			}
		}
		_ = math.Abs(residual) // residual may remain due to discretisation
	}
	return full, nil
}

// Residuals returns, for each BILP equality constraint, the absolute
// residual |RHS − LHS| under a full assignment; useful to diagnose which
// constraints a sample violates.
func (e *Encoding) Residuals(full []bool) []float64 {
	out := make([]float64, len(e.BILP.Cons))
	for i := range e.BILP.Cons {
		c := &e.BILP.Cons[i]
		out[i] = math.Abs(c.RHS - c.LHS(full))
	}
	return out
}

// FeasibleMILP reports whether the decision part of an assignment
// satisfies the original inequality model within tolerance.
func (e *Encoding) FeasibleMILP(decision []bool, tol float64) bool {
	return e.MILP.Feasible(decision, tol)
}

// SolveExact solves the underlying BILP by enumeration over the decision
// variables (choosing minimal cto/pao settings is already encoded in
// EncodeOrder, so enumeration over join orders suffices and is exact):
// it scores every permutation via ApproxCost and returns the best
// (approximated-cost-optimal) order. This mirrors what an exact classical
// solver would return for the paper's MILP model.
func (e *Encoding) SolveExact() (Decoded, error) {
	n := e.Query.NumRelations()
	if n > 10 {
		return Decoded{}, fmt.Errorf("core: SolveExact limited to 10 relations, got %d", n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := Decoded{}
	bestApprox := math.Inf(1)
	var rec func(k int) error
	rec = func(k int) error {
		if k == n {
			o := append([]int(nil), perm...)
			approx, err := e.ApproxCost(o)
			if err != nil {
				return err
			}
			if approx < bestApprox {
				bestApprox = approx
				best = Decoded{Valid: true, Order: o, Cost: e.Query.Cost(o)}
			}
			return nil
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := rec(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := rec(0); err != nil {
		return Decoded{}, err
	}
	return best, nil
}
