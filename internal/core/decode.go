package core

import (
	"fmt"
	"math"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/join"
)

// Decoded is the result of post-processing one QPU sample (§3.5).
type Decoded struct {
	// Valid reports whether the assignment unambiguously encodes a valid
	// left-deep join tree (exactly one distinct inner relation per join).
	Valid bool
	// Order is the decoded join order (only meaningful when Valid).
	Order join.Order
	// Cost is the exact C_out cost of Order (only meaningful when Valid).
	Cost float64
	// Energy is the QUBO objective value of the assignment.
	Energy float64
}

// Decode post-processes a sampled variable assignment following §3.5:
// instead of judging the sample by its penalty value (QPUs routinely
// violate some constraints), it inspects the tii variables, requires each
// join's inner operand to be represented by exactly one relation with all
// inner relations distinct, and derives the first outer relation by
// elimination. The assignment may cover either all QUBO variables
// (including slack bits) or just the decision variables.
func (e *Encoding) Decode(x []bool) Decoded {
	if len(x) < e.NumDecisionVars() {
		panic(fmt.Sprintf("core: assignment has %d variables, need at least %d", len(x), e.NumDecisionVars()))
	}
	d := Decoded{}
	if len(x) == e.QUBO.N() {
		d.Energy = e.QUBO.Value(x)
	}
	T := e.Query.NumRelations()
	J := e.Query.NumJoins()
	used := make([]bool, T)
	inner := make([]int, J)
	for j := 0; j < J; j++ {
		inner[j] = -1
		for t := 0; t < T; t++ {
			if !x[e.tii[t][j]] {
				continue
			}
			if inner[j] >= 0 {
				return d // ambiguous: two inner relations for one join
			}
			inner[j] = t
		}
		if inner[j] < 0 || used[inner[j]] {
			return d // missing or repeated inner relation
		}
		used[inner[j]] = true
	}
	first := -1
	for t := 0; t < T; t++ {
		if !used[t] {
			first = t
			break
		}
	}
	if first < 0 {
		return d
	}
	order := make(join.Order, 0, T)
	order = append(order, first)
	order = append(order, inner...)
	d.Valid = true
	d.Order = order
	d.Cost = e.Query.Cost(order)
	return d
}

// EncodeOrder produces the canonical feasible BILP assignment (decision
// variables only, slack bits excluded) representing a join order; the
// inverse of Decode for valid orders. cto variables are set to the minimal
// values satisfying the threshold constraints and pao variables to their
// maximal admissible values (which is what the optimiser would choose).
func (e *Encoding) EncodeOrder(o join.Order) ([]bool, error) {
	q := e.Query
	T := q.NumRelations()
	if !o.IsPermutation(T) {
		return nil, fmt.Errorf("core: order %v is not a permutation of %d relations", o, T)
	}
	J := q.NumJoins()
	x := make([]bool, e.NumDecisionVars())
	inOuter := make([]uint64, J) // mask of relations in outer operand of join j
	inOuter[0] = 1 << uint(o[0])
	for j := 1; j < J; j++ {
		inOuter[j] = inOuter[j-1] | 1<<uint(o[j])
	}
	// Choose pao assignments the way a solver would: predicates only help
	// (they lower c_j below thresholds), but the threshold constraints
	// only admit slacks for c_j >= 0 (Lemma 5.1 assumes non-negative
	// intermediate log-cardinalities), so predicates are applied greedily
	// while c_j stays non-negative. The resulting c_j per join drives the
	// cto activations.
	paoOn := make([][]bool, q.NumPredicates())
	for p := range paoOn {
		paoOn[p] = make([]bool, J)
	}
	cj := make([]float64, J)
	for j := 0; j < J; j++ {
		for t := 0; t < T; t++ {
			if inOuter[j]&(1<<uint(t)) != 0 {
				cj[j] += q.LogCard(t)
			}
		}
		for p, pred := range q.Predicates {
			m := inOuter[j]
			applicable := m&(1<<uint(pred.R1)) != 0 && m&(1<<uint(pred.R2)) != 0
			if applicable && cj[j]+q.LogSel(p) >= 0 {
				paoOn[p][j] = true
				cj[j] += q.LogSel(p)
			}
		}
	}
	for vi, info := range e.Infos {
		switch info.Kind {
		case TIO:
			x[vi] = inOuter[info.J]&(1<<uint(info.T)) != 0
		case TII:
			x[vi] = o[info.J+1] == info.T
		case PAO:
			x[vi] = paoOn[info.P][info.J]
		case CTO:
			// Activated iff the outer operand's (predicate-adjusted) log
			// cardinality exceeds the grid-snapped threshold.
			x[vi] = cj[info.J] > e.snappedLogThreshold(info.R)+1e-12
		}
	}
	return x, nil
}

// ApproxCost evaluates the threshold-approximated cost the objective
// charges for a join order: Σ_{r,j} θ_r whenever the outer operand of join
// j exceeds θ_r. This is the quantity the QUBO actually minimises; Decode
// reports the exact C_out cost for comparison (Example 3.3 discusses the
// gap).
func (e *Encoding) ApproxCost(o join.Order) (float64, error) {
	x, err := e.EncodeOrder(o)
	if err != nil {
		return 0, err
	}
	cost := 0.0
	for vi, info := range e.Infos {
		if info.Kind == CTO && x[vi] {
			if e.Opts.LogObjective {
				cost += math.Log10(e.Opts.Thresholds[info.R])
			} else {
				cost += e.Opts.Thresholds[info.R]
			}
		}
	}
	return cost, nil
}

// BestValid scans a set of samples, decodes each, and returns the decoded
// solution with the lowest exact cost among valid ones together with the
// number of valid samples; ok is false when no sample is valid. This is
// the paper's final post-processing step ("determine the best join order
// among all valid solutions").
func (e *Encoding) BestValid(samples [][]bool) (best Decoded, valid int, ok bool) {
	for _, s := range samples {
		d := e.Decode(s)
		if !d.Valid {
			continue
		}
		valid++
		if !ok || d.Cost < best.Cost {
			best = d
			ok = true
		}
	}
	return best, valid, ok
}

// Decoder decodes samples without per-call allocations: the per-decode
// scratch (used marks, inner picks, order buffers) lives on the Decoder
// and is reused across calls, growing only when a larger encoding shows
// up. A Decoder is not safe for concurrent use; pool instances instead of
// sharing one. The zero value is ready to use.
type Decoder struct {
	used  []bool
	inner []int
	cur   Decoded // scratch for the candidate being decoded
}

// grow sizes the scratch for an encoding with T relations and J joins.
func (dec *Decoder) grow(t, j int) {
	if cap(dec.used) < t {
		dec.used = make([]bool, t)
	}
	dec.used = dec.used[:t]
	for i := range dec.used {
		dec.used[i] = false
	}
	if cap(dec.inner) < j {
		dec.inner = make([]int, j)
	}
	dec.inner = dec.inner[:j]
}

// DecodeInto is Encoding.Decode writing its result into *d, reusing
// d.Order's backing array when it has capacity. On invalid samples d is
// reset to the zero Decoded (with Energy, like Decode).
func (dec *Decoder) DecodeInto(e *Encoding, x []bool, d *Decoded) {
	if len(x) < e.NumDecisionVars() {
		panic(fmt.Sprintf("core: assignment has %d variables, need at least %d", len(x), e.NumDecisionVars()))
	}
	d.Valid = false
	d.Order = d.Order[:0]
	d.Cost = 0
	d.Energy = 0
	if len(x) == e.QUBO.N() {
		d.Energy = e.QUBO.Value(x)
	}
	T := e.Query.NumRelations()
	J := e.Query.NumJoins()
	dec.grow(T, J)
	for j := 0; j < J; j++ {
		dec.inner[j] = -1
		for t := 0; t < T; t++ {
			if !x[e.tii[t][j]] {
				continue
			}
			if dec.inner[j] >= 0 {
				return // ambiguous: two inner relations for one join
			}
			dec.inner[j] = t
		}
		if dec.inner[j] < 0 || dec.used[dec.inner[j]] {
			return // missing or repeated inner relation
		}
		dec.used[dec.inner[j]] = true
	}
	first := -1
	for t := 0; t < T; t++ {
		if !dec.used[t] {
			first = t
			break
		}
	}
	if first < 0 {
		return
	}
	d.Order = append(d.Order, first)
	for _, t := range dec.inner {
		d.Order = append(d.Order, t)
	}
	d.Valid = true
	d.Cost = e.Query.Cost(d.Order)
}

// BestValidInto is BestValid with Decoder scratch reuse: *best receives
// the cheapest valid decode (its Order backing array is reused). ok is
// false — and *best is left untouched — when no sample is valid.
func (dec *Decoder) BestValidInto(e *Encoding, samples [][]bool, best *Decoded) (valid int, ok bool) {
	for _, s := range samples {
		dec.DecodeInto(e, s, &dec.cur)
		if !dec.cur.Valid {
			continue
		}
		valid++
		if !ok || dec.cur.Cost < best.Cost {
			// Swap buffers instead of copying: cur's order becomes the
			// best, and best's old backing array is recycled as scratch.
			dec.cur, *best = *best, dec.cur
			ok = true
		}
	}
	return valid, ok
}

// Optimal returns the classical DP optimum of the encoded query, computed
// at most once per encoding and cached for its lifetime. An encoding held
// in the service's LRU cache therefore pays for the exponential DP once
// per query shape, not once per request; since plan costs are invariant
// under relation relabelling, the cached cost is also the optimum of every
// query that canonicalises to this encoding.
func (e *Encoding) Optimal() (classical.Result, error) {
	e.optOnce.Do(func() {
		e.optRes, e.optErr = classical.Optimal(e.Query)
	})
	return e.optRes, e.optErr
}

// IsOptimal reports whether a decoded solution attains the classical
// optimum of the underlying query (cached, see Optimal).
func (e *Encoding) IsOptimal(d Decoded) (bool, error) {
	if !d.Valid {
		return false, nil
	}
	opt, err := e.Optimal()
	if err != nil {
		return false, err
	}
	return d.Cost <= opt.Cost*(1+1e-9)+1e-12, nil
}
