package anneal

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"quantumjoin/internal/qubo"
	"quantumjoin/internal/topology"
)

func ringProblem(n int) *IsingProblem {
	p := NewIsingProblem(n)
	for i := 0; i < n; i++ {
		p.H[i] = 0.5
		p.AddCoupling(i, (i+1)%n, -1)
	}
	return p
}

func TestAnnealContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sa := SimulatedAnnealer{Sweeps: 1 << 20} // would take far too long uncancelled
	start := time.Now()
	spins, err := sa.AnnealContext(ctx, ringProblem(64), rand.New(rand.NewSource(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(spins) != 64 {
		t.Errorf("partial state has %d spins, want 64", len(spins))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled anneal still ran for %v", elapsed)
	}
}

func TestPIMCAnnealContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pa := PathIntegralAnnealer{Sweeps: 1 << 20}
	spins, err := pa.AnnealContext(ctx, ringProblem(32), rand.New(rand.NewSource(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(spins) != 32 {
		t.Errorf("partial state has %d spins, want 32", len(spins))
	}
}

func TestAnnealContextUncancelledMatchesAnneal(t *testing.T) {
	sa := SimulatedAnnealer{Sweeps: 48}
	p := ringProblem(16)
	a := sa.Anneal(p, rand.New(rand.NewSource(7)))
	b, err := sa.AnnealContext(context.Background(), p, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spin %d differs between Anneal and AnnealContext", i)
		}
	}
}

func TestDeviceSampleContextDeadline(t *testing.T) {
	dev := NewDevice(topology.Chimera(2, 2, 4))
	q := qubo.New(4)
	q.AddLinear(0, -1)
	q.AddQuad(0, 1, 2)
	q.AddQuad(1, 2, -1)
	q.AddQuad(2, 3, 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dev.SampleContext(ctx, q, 100, 20, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled SampleContext err = %v, want context.Canceled", err)
	}

	// A deadline mid-run returns the reads collected so far.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	out, err := dev.SampleContext(ctx2, q, 1<<20, 20, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if out == nil {
		t.Fatal("no partial result returned")
	}
	if len(out.Assignments) >= 1<<20 {
		t.Error("deadline did not interrupt sampling")
	}
}
