package anneal

import (
	"math/rand"
	"testing"

	"quantumjoin/internal/qubo"
)

func TestPIMCFindsFerromagneticGroundState(t *testing.T) {
	p := NewIsingProblem(8)
	for i := range p.H {
		p.H[i] = 1
	}
	for i := 0; i < 8; i++ {
		p.AddCoupling(i, (i+1)%8, -2)
	}
	rng := rand.New(rand.NewSource(4))
	pa := PathIntegralAnnealer{Sweeps: 150}
	hits := 0
	for r := 0; r < 20; r++ {
		s := pa.Anneal(p, rng)
		allDown := true
		for _, v := range s {
			if v != -1 {
				allDown = false
			}
		}
		if allDown {
			hits++
		}
	}
	if hits < 12 {
		t.Fatalf("PIMC found the ground state only %d/20 times", hits)
	}
}

func TestPIMCDefaultsApplied(t *testing.T) {
	p := NewIsingProblem(3)
	p.AddCoupling(0, 1, -1)
	rng := rand.New(rand.NewSource(5))
	s := (PathIntegralAnnealer{}).Anneal(p, rng)
	if len(s) != 3 {
		t.Fatalf("spin vector length %d", len(s))
	}
	for _, v := range s {
		if v != 1 && v != -1 {
			t.Fatalf("invalid spin %d", v)
		}
	}
}

func TestDeviceWithPIMCSampler(t *testing.T) {
	d := testDevice()
	d.NewSampler = PIMCSamplerFactory(6)
	q := qubo.New(3)
	q.AddLinear(0, 2)
	q.AddLinear(1, -1)
	q.AddLinear(2, -1)
	q.AddQuad(0, 1, 1)
	q.AddQuad(0, 2, 1)
	res, err := d.Sample(q, 40, 30, 13)
	if err != nil {
		t.Fatal(err)
	}
	best := res.Energies[0]
	for _, e := range res.Energies {
		if e < best {
			best = e
		}
	}
	if best > -2+1e-9 {
		t.Fatalf("PIMC-backed device best energy %v, want -2", best)
	}
}

// PIMC and SA must both solve a frustrated problem; PIMC should be at
// least competitive on this tunnelling-friendly instance.
func TestPIMCCompetitiveWithSA(t *testing.T) {
	// A double-well structure: two cliques with opposing fields, weakly
	// coupled — thermal annealers get trapped in the wrong well at low
	// sweep budgets.
	p := NewIsingProblem(12)
	for i := 0; i < 6; i++ {
		p.H[i] = 0.1
		for j := i + 1; j < 6; j++ {
			p.AddCoupling(i, j, -1)
		}
	}
	for i := 6; i < 12; i++ {
		p.H[i] = -0.1
		for j := i + 1; j < 12; j++ {
			p.AddCoupling(i, j, -1)
		}
	}
	p.AddCoupling(0, 6, 0.5)
	rng := rand.New(rand.NewSource(6))
	saBest, paBest := 1e18, 1e18
	sa := SimulatedAnnealer{Sweeps: 30}
	pa := PathIntegralAnnealer{Sweeps: 30}
	for r := 0; r < 15; r++ {
		if e := p.Energy(sa.Anneal(p, rng)); e < saBest {
			saBest = e
		}
		if e := p.Energy(pa.Anneal(p, rng)); e < paBest {
			paBest = e
		}
	}
	if paBest > saBest+2 {
		t.Fatalf("PIMC best %v much worse than SA best %v", paBest, saBest)
	}
}
