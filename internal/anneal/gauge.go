package anneal

import "math/rand"

// GaugeTransform is a spin-reversal transform: a random sign vector
// g ∈ {±1}^n applied as h'_i = g_i h_i and J'_ij = g_i g_j J_ij. The
// transformed problem has an identical energy landscape up to the spin
// relabelling s_i → g_i s_i, but analog biases of the hardware (or of a
// sampler) act on different physical configurations — averaging over
// gauges is standard D-Wave practice to decorrelate systematic control
// errors from the problem structure.
type GaugeTransform struct {
	Signs []int8
}

// NewGaugeTransform draws a random gauge for n spins.
func NewGaugeTransform(n int, rng *rand.Rand) GaugeTransform {
	g := GaugeTransform{Signs: make([]int8, n)}
	for i := range g.Signs {
		if rng.Intn(2) == 0 {
			g.Signs[i] = 1
		} else {
			g.Signs[i] = -1
		}
	}
	return g
}

// Apply returns the gauge-transformed copy of the problem.
func (g GaugeTransform) Apply(p *IsingProblem) *IsingProblem {
	out := p.Copy()
	for i := range out.H {
		out.H[i] *= float64(g.Signs[i])
	}
	for i := range out.Adj {
		for k := range out.Adj[i] {
			out.Adj[i][k].J *= float64(g.Signs[i]) * float64(g.Signs[out.Adj[i][k].To])
		}
	}
	return out
}

// Undo maps a spin configuration of the transformed problem back to the
// original problem's frame.
func (g GaugeTransform) Undo(s []int8) []int8 {
	out := make([]int8, len(s))
	for i := range s {
		out[i] = s[i] * g.Signs[i]
	}
	return out
}
