package anneal

import (
	"context"
	"math/rand"
	"testing"

	"quantumjoin/internal/qubo"
	"quantumjoin/internal/topology"
)

func batchTestQUBO(n int, rng *rand.Rand) *qubo.QUBO {
	q := qubo.New(n)
	for i := 0; i < n; i++ {
		q.AddLinear(i, rng.NormFloat64())
		if i > 0 {
			q.AddQuad(i-1, i, rng.NormFloat64())
		}
	}
	return q
}

// TestSampleBatchMatchesSingle pins the batch read loop (shared
// perturbation scratch via CopyInto) to the standalone SampleContext path:
// with equal seeds the RNG streams are identical, so the assignments and
// energies must match bit for bit.
func TestSampleBatchMatchesSingle(t *testing.T) {
	g, _ := topology.Pegasus(3)
	dev := NewDevice(g)
	rng := rand.New(rand.NewSource(11))
	jobs := make([]BatchJob, 0, 4)
	for i := 0; i < 4; i++ {
		jobs = append(jobs, BatchJob{
			Q:                batchTestQUBO(4+i, rng),
			Reads:            10,
			AnnealTimeMicros: 20,
			Seed:             int64(100 + i),
		})
	}
	results, errs := dev.SampleBatchContext(context.Background(), jobs)
	for i, job := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		want, err := dev.SampleContext(context.Background(), job.Q, job.Reads, job.AnnealTimeMicros, job.Seed)
		if err != nil {
			t.Fatalf("job %d single: %v", i, err)
		}
		if len(results[i].Assignments) != len(want.Assignments) {
			t.Fatalf("job %d: %d reads != %d", i, len(results[i].Assignments), len(want.Assignments))
		}
		for r := range want.Assignments {
			if results[i].Energies[r] != want.Energies[r] {
				t.Fatalf("job %d read %d: batch energy %v != single %v", i, r, results[i].Energies[r], want.Energies[r])
			}
			for v := range want.Assignments[r] {
				if results[i].Assignments[r][v] != want.Assignments[r][v] {
					t.Fatalf("job %d read %d: assignment differs at %d", i, r, v)
				}
			}
		}
	}
}

// TestSampleBatchBadJob: a job with invalid knobs fails alone without
// sinking its batch.
func TestSampleBatchBadJob(t *testing.T) {
	g, _ := topology.Pegasus(3)
	dev := NewDevice(g)
	rng := rand.New(rand.NewSource(5))
	jobs := []BatchJob{
		{Q: batchTestQUBO(4, rng), Reads: 0, AnnealTimeMicros: 20, Seed: 1},
		{Q: batchTestQUBO(4, rng), Reads: 5, AnnealTimeMicros: 20, Seed: 2},
	}
	results, errs := dev.SampleBatchContext(context.Background(), jobs)
	if errs[0] == nil {
		t.Fatal("job 0 with zero reads should fail")
	}
	if errs[1] != nil || results[1] == nil || len(results[1].Assignments) != 5 {
		t.Fatalf("job 1 should succeed with 5 reads, got err=%v", errs[1])
	}
}

// TestCopyInto pins the scratch-refresh primitive: after a perturbation,
// CopyInto must restore the original coefficients exactly.
func TestCopyInto(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewIsingProblem(6)
	for i := 0; i < 6; i++ {
		p.H[i] = rng.NormFloat64()
	}
	p.AddCoupling(0, 1, 0.5)
	p.AddCoupling(1, 2, -0.25)
	p.Const = 3
	scratch := p.Copy()
	scratch.Perturb(0.1, 0.1, rng)
	p.CopyInto(scratch)
	s := []int8{1, -1, 1, -1, 1, -1}
	if got, want := scratch.Energy(s), p.Energy(s); got != want {
		t.Fatalf("CopyInto did not restore coefficients: %v != %v", got, want)
	}
}
