package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// PathIntegralAnnealer approximates transverse-field quantum annealing by
// path-integral Monte Carlo: the quantum system at inverse temperature β
// with transverse field Γ(t) maps onto P coupled classical replicas
// ("Trotter slices") with an inter-slice ferromagnetic coupling
// J⊥ = −(P/2β)·ln tanh(βΓ/P). Annealing lowers Γ from Gamma0 towards ~0,
// letting quantum fluctuations (replica disagreement) tunnel through
// barriers that defeat purely thermal simulated annealing — the mechanism
// quantum annealers rely on (§2.2.2).
//
// This sampler exists as the physically closer alternative to
// SimulatedAnnealer; the ablation experiment compares both.
type PathIntegralAnnealer struct {
	// Slices is the Trotter number P (default 8).
	Slices int
	// Sweeps is the number of full sweeps over all slices per read.
	Sweeps int
	// Gamma0 is the initial transverse field (default 3).
	Gamma0 float64
	// Beta is the (fixed) inverse temperature (default 8).
	Beta float64
	// InitialState, when non-nil and of length N, seeds every Trotter
	// replica with the given spin configuration instead of random spins —
	// the path-integral analogue of reverse annealing: the residual
	// transverse field perturbs a classical incumbent rather than a random
	// state. When set, the Gamma0 default drops from 3 to 0.5 (a reduced
	// reverse-annealing field) and the Beta default rises from 8 to 32 (a
	// colder bath) so the early sweeps refine the incumbent instead of
	// scrambling it; set Gamma0/Beta explicitly to override.
	InitialState []int8
}

// WarmStart returns a copy of the annealer whose replicas start from the
// given spin configuration; it implements WarmStarter.
func (pa PathIntegralAnnealer) WarmStart(s []int8) Annealer {
	pa.InitialState = s
	return pa
}

// Anneal runs one read and returns the spin configuration of the replica
// with the lowest classical energy.
func (pa PathIntegralAnnealer) Anneal(p *IsingProblem, rng *rand.Rand) []int8 {
	s, _ := pa.AnnealContext(context.Background(), p, rng)
	return s
}

// AnnealContext is Anneal with cancellation: the context is polled every
// ctxCheckSweeps sweeps, and on expiry the read stops early, returning the
// best replica reached so far together with the context error wrapped in
// partial-progress information.
func (pa PathIntegralAnnealer) AnnealContext(ctx context.Context, p *IsingProblem, rng *rand.Rand) ([]int8, error) {
	if pa.Slices <= 0 {
		pa.Slices = 8
	}
	if pa.Sweeps <= 0 {
		pa.Sweeps = 64
	}
	if pa.Gamma0 == 0 {
		if pa.InitialState != nil {
			pa.Gamma0 = 0.5
		} else {
			pa.Gamma0 = 3
		}
	}
	if pa.Beta == 0 {
		if pa.InitialState != nil {
			pa.Beta = 32
		} else {
			pa.Beta = 8
		}
	}
	n := p.N()
	P := pa.Slices
	betaSlice := pa.Beta / float64(P)

	spins := make([][]int8, P)
	for k := range spins {
		spins[k] = make([]int8, n)
		if len(pa.InitialState) == n {
			copy(spins[k], pa.InitialState)
			continue
		}
		for i := range spins[k] {
			if rng.Intn(2) == 0 {
				spins[k][i] = 1
			} else {
				spins[k][i] = -1
			}
		}
	}
	// local[k][i] = classical field on spin i in slice k.
	local := make([][]float64, P)
	for k := range local {
		local[k] = make([]float64, n)
		for i := range local[k] {
			f := p.H[i]
			for _, c := range p.Adj[i] {
				f += c.J * float64(spins[k][c.To])
			}
			local[k][i] = f
		}
	}

	bestReplica := func() []int8 {
		best := spins[0]
		bestE := p.Energy(spins[0])
		for k := 1; k < P; k++ {
			if e := p.Energy(spins[k]); e < bestE {
				bestE = e
				best = spins[k]
			}
		}
		return best
	}

	for sweep := 0; sweep < pa.Sweeps; sweep++ {
		if sweep%ctxCheckSweeps == 0 {
			if err := ctx.Err(); err != nil {
				return bestReplica(), fmt.Errorf("anneal: PIMC read interrupted after %d/%d sweeps: %w", sweep, pa.Sweeps, err)
			}
		}
		// Linear Γ schedule down to a small residual field.
		frac := float64(sweep) / math.Max(1, float64(pa.Sweeps-1))
		gamma := pa.Gamma0 * (1 - frac)
		if gamma < 1e-3 {
			gamma = 1e-3
		}
		jPerp := -0.5 / betaSlice * math.Log(math.Tanh(betaSlice*gamma))
		for k := 0; k < P; k++ {
			up := (k + 1) % P
			down := (k - 1 + P) % P
			for i := 0; i < n; i++ {
				s := float64(spins[k][i])
				// ΔE: classical part within the slice plus the
				// inter-slice coupling to the neighbouring replicas.
				dE := -2 * s * (local[k][i] + jPerp*(float64(spins[up][i])+float64(spins[down][i])))
				if dE <= 0 || rng.Float64() < math.Exp(-betaSlice*dE) {
					spins[k][i] = -spins[k][i]
					for _, c := range p.Adj[i] {
						local[k][c.To] -= 2 * c.J * s
					}
				}
			}
		}
	}
	return bestReplica(), nil
}
