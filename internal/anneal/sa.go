// Package anneal simulates quantum annealing on a D-Wave-style QPU: the
// logical QUBO is minor-embedded onto the hardware graph, linear and
// quadratic coefficients are distributed over qubit chains, analog control
// noise (ICE) perturbs the programmed Hamiltonian per read, and an
// annealing sampler produces spin configurations that are unembedded by
// majority vote (§2.2.2, §4.2.2).
//
// Substitution note (DESIGN.md): the quantum annealing dynamics themselves
// are replaced by classical simulated annealing (plus an optional
// path-integral Monte Carlo mode approximating transverse-field dynamics);
// the annealing time maps to a sweep budget. The mechanisms driving the
// paper's Table 3 — chain growth, finite analog precision, thermal noise —
// are preserved exactly.
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// ctxCheckSweeps is the sweep interval at which annealing loops poll the
// context: frequent enough that deadlines bite within milliseconds on
// realistic problem sizes, rare enough to stay off the hot path.
const ctxCheckSweeps = 16

// IsingProblem is a sparse Ising Hamiltonian over spins ±1, stored as
// adjacency lists for fast single-spin-flip dynamics.
type IsingProblem struct {
	H     []float64
	Adj   [][]coupling
	Const float64
}

type coupling struct {
	To int
	J  float64
}

// NewIsingProblem allocates an empty problem over n spins.
func NewIsingProblem(n int) *IsingProblem {
	return &IsingProblem{H: make([]float64, n), Adj: make([][]coupling, n)}
}

// AddCoupling adds J·s_a·s_b.
func (p *IsingProblem) AddCoupling(a, b int, j float64) {
	if a == b {
		panic(fmt.Sprintf("anneal: self-coupling on spin %d", a))
	}
	p.Adj[a] = append(p.Adj[a], coupling{b, j})
	p.Adj[b] = append(p.Adj[b], coupling{a, j})
}

// N returns the spin count.
func (p *IsingProblem) N() int { return len(p.H) }

// Energy evaluates the Hamiltonian.
func (p *IsingProblem) Energy(s []int8) float64 {
	e := p.Const
	for i, h := range p.H {
		e += h * float64(s[i])
	}
	for i, nbrs := range p.Adj {
		for _, c := range nbrs {
			if c.To > i {
				e += c.J * float64(s[i]) * float64(s[c.To])
			}
		}
	}
	return e
}

// MaxAbs returns the largest absolute field or coupling, used for
// rescaling into the hardware's programmable range.
func (p *IsingProblem) MaxAbs() float64 {
	m := 0.0
	for _, h := range p.H {
		if a := math.Abs(h); a > m {
			m = a
		}
	}
	for _, nbrs := range p.Adj {
		for _, c := range nbrs {
			if a := math.Abs(c.J); a > m {
				m = a
			}
		}
	}
	return m
}

// Scale multiplies all coefficients by f.
func (p *IsingProblem) Scale(f float64) {
	for i := range p.H {
		p.H[i] *= f
	}
	for i := range p.Adj {
		for k := range p.Adj[i] {
			p.Adj[i][k].J *= f
		}
	}
	p.Const *= f
}

// Copy returns a deep copy.
func (p *IsingProblem) Copy() *IsingProblem {
	c := NewIsingProblem(p.N())
	copy(c.H, p.H)
	c.Const = p.Const
	for i := range p.Adj {
		c.Adj[i] = append([]coupling(nil), p.Adj[i]...)
	}
	return c
}

// CopyInto overwrites dst with p's coefficients without allocating. dst
// must have been created as a Copy of p (same spin count and adjacency
// structure); only the field, coupling, and constant values are refreshed.
// This is the per-read reset of the batch sampling fast path, replacing a
// full Copy per read with a value refresh of a reused scratch problem.
func (p *IsingProblem) CopyInto(dst *IsingProblem) {
	if dst.N() != p.N() {
		panic(fmt.Sprintf("anneal: CopyInto size mismatch: %d != %d spins", dst.N(), p.N()))
	}
	copy(dst.H, p.H)
	dst.Const = p.Const
	for i := range p.Adj {
		if len(dst.Adj[i]) != len(p.Adj[i]) {
			panic(fmt.Sprintf("anneal: CopyInto adjacency mismatch on spin %d", i))
		}
		copy(dst.Adj[i], p.Adj[i])
	}
}

// Perturb adds independent Gaussian noise to every field (sigmaH) and
// every coupling (sigmaJ) — D-Wave's integrated control errors (ICE).
// Couplings are stored twice (once per endpoint); both copies receive the
// same perturbation.
func (p *IsingProblem) Perturb(sigmaH, sigmaJ float64, rng *rand.Rand) {
	for i := range p.H {
		p.H[i] += rng.NormFloat64() * sigmaH
	}
	for i := range p.Adj {
		for k := range p.Adj[i] {
			c := p.Adj[i][k]
			if c.To < i {
				continue
			}
			d := rng.NormFloat64() * sigmaJ
			p.Adj[i][k].J += d
			// Find the mirrored entry.
			for k2 := range p.Adj[c.To] {
				if p.Adj[c.To][k2].To == i {
					p.Adj[c.To][k2].J += d
					break
				}
			}
		}
	}
}

// SimulatedAnnealer is a Metropolis single-spin-flip annealer with a
// geometric inverse-temperature schedule.
type SimulatedAnnealer struct {
	// Sweeps is the number of full sweeps per read.
	Sweeps int
	// BetaMin and BetaMax bound the geometric β schedule (defaults 0.1
	// and 10, in units of the rescaled Hamiltonian).
	BetaMin, BetaMax float64
	// InitialState, when non-nil and of length N, seeds the read with the
	// given spin configuration instead of a random one (the reverse-
	// annealing warm start used by the hybrid orchestrator). Callers
	// warm-starting from a good incumbent should also raise BetaMin so the
	// early hot sweeps refine the state rather than scramble it.
	InitialState []int8
}

// WarmStart returns a copy of the annealer seeded with the given spin
// configuration; it implements WarmStarter.
func (sa SimulatedAnnealer) WarmStart(s []int8) Annealer {
	sa.InitialState = s
	return sa
}

// Anneal runs one read from a random initial state and returns the final
// spin configuration.
func (sa SimulatedAnnealer) Anneal(p *IsingProblem, rng *rand.Rand) []int8 {
	s, _ := sa.AnnealContext(context.Background(), p, rng)
	return s
}

// AnnealContext is Anneal with cancellation: the context is polled every
// ctxCheckSweeps sweeps, and on expiry the read stops early, returning the
// spin configuration reached so far together with the context error
// wrapped in partial-progress information.
func (sa SimulatedAnnealer) AnnealContext(ctx context.Context, p *IsingProblem, rng *rand.Rand) ([]int8, error) {
	if sa.Sweeps <= 0 {
		sa.Sweeps = 64
	}
	if sa.BetaMin == 0 {
		sa.BetaMin = 0.1
	}
	if sa.BetaMax == 0 {
		sa.BetaMax = 10
	}
	n := p.N()
	s := make([]int8, n)
	local := make([]float64, n)
	if len(sa.InitialState) == n {
		copy(s, sa.InitialState)
	} else {
		for i := range s {
			if rng.Intn(2) == 0 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
	}
	for i := range local {
		f := p.H[i]
		for _, c := range p.Adj[i] {
			f += c.J * float64(s[c.To])
		}
		local[i] = f
	}
	ratio := math.Pow(sa.BetaMax/sa.BetaMin, 1/math.Max(1, float64(sa.Sweeps-1)))
	beta := sa.BetaMin
	for sweep := 0; sweep < sa.Sweeps; sweep++ {
		if sweep%ctxCheckSweeps == 0 {
			if err := ctx.Err(); err != nil {
				return s, fmt.Errorf("anneal: read interrupted after %d/%d sweeps: %w", sweep, sa.Sweeps, err)
			}
		}
		for i := 0; i < n; i++ {
			// ΔE for flipping spin i.
			dE := -2 * float64(s[i]) * local[i]
			if dE <= 0 || rng.Float64() < math.Exp(-beta*dE) {
				old := float64(s[i])
				s[i] = -s[i]
				for _, c := range p.Adj[i] {
					local[c.To] -= 2 * c.J * old
				}
			}
		}
		beta *= ratio
	}
	return s, nil
}
