package anneal

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// randomIsing builds a random dense-ish Ising problem for equivalence tests.
func randomIsing(rng *rand.Rand, n int) *IsingProblem {
	p := NewIsingProblem(n)
	for i := 0; i < n; i++ {
		p.H[i] = rng.NormFloat64()
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				p.AddCoupling(i, j, rng.NormFloat64())
			}
		}
	}
	return p
}

func seedRngs(seeds ...int64) []*rand.Rand {
	rngs := make([]*rand.Rand, len(seeds))
	for i, s := range seeds {
		rngs[i] = rand.New(rand.NewSource(s))
	}
	return rngs
}

// TestSABatchMatchesSequential pins the batched-read contract: replica r of
// AnnealBatchContext must be spin-for-spin identical to a solo AnnealContext
// read with the same RNG, for both a shared problem and per-replica
// (ICE-style perturbed) problem copies, and under a warm start.
func TestSABatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4401))
	p := randomIsing(rng, 12)
	seeds := []int64{1, 7, 42, 1001}

	perReplica := make([]*IsingProblem, len(seeds))
	for r := range perReplica {
		c := p.Copy()
		c.Perturb(0.05, 0.05, rand.New(rand.NewSource(int64(r)+500)))
		perReplica[r] = c
	}
	warm := make([]int8, p.N())
	for i := range warm {
		if i%2 == 0 {
			warm[i] = 1
		} else {
			warm[i] = -1
		}
	}

	cases := []struct {
		name  string
		sa    SimulatedAnnealer
		probs []*IsingProblem
	}{
		{"shared", SimulatedAnnealer{Sweeps: 48}, []*IsingProblem{p}},
		{"per-replica", SimulatedAnnealer{Sweeps: 48}, perReplica},
		{"warm-start", SimulatedAnnealer{Sweeps: 48, InitialState: warm}, []*IsingProblem{p}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batch, err := tc.sa.AnnealBatchContext(context.Background(), tc.probs, seedRngs(seeds...))
			if err != nil {
				t.Fatal(err)
			}
			for r, seed := range seeds {
				prob := tc.probs[0]
				if len(tc.probs) > 1 {
					prob = tc.probs[r]
				}
				solo, err := tc.sa.AnnealContext(context.Background(), prob, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				for i := range solo {
					if batch[r][i] != solo[i] {
						t.Fatalf("replica=%d spin=%d: batched %d != solo %d", r, i, batch[r][i], solo[i])
					}
				}
			}
		})
	}
}

// TestPIMCBatchMatchesSequential is the PIMC counterpart of the SA
// equivalence test, covering the multi-slice RNG draw order and the
// best-replica selection.
func TestPIMCBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4402))
	p := randomIsing(rng, 10)
	seeds := []int64{2, 13, 77}

	perReplica := make([]*IsingProblem, len(seeds))
	for r := range perReplica {
		c := p.Copy()
		c.Perturb(0.05, 0.05, rand.New(rand.NewSource(int64(r)+900)))
		perReplica[r] = c
	}
	warm := make([]int8, p.N())
	for i := range warm {
		warm[i] = 1
	}

	cases := []struct {
		name  string
		pa    PathIntegralAnnealer
		probs []*IsingProblem
	}{
		{"shared", PathIntegralAnnealer{Sweeps: 32, Slices: 4}, []*IsingProblem{p}},
		{"per-replica", PathIntegralAnnealer{Sweeps: 32, Slices: 4}, perReplica},
		{"warm-start", PathIntegralAnnealer{Sweeps: 32, Slices: 4, InitialState: warm}, []*IsingProblem{p}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batch, err := tc.pa.AnnealBatchContext(context.Background(), tc.probs, seedRngs(seeds...))
			if err != nil {
				t.Fatal(err)
			}
			for r, seed := range seeds {
				prob := tc.probs[0]
				if len(tc.probs) > 1 {
					prob = tc.probs[r]
				}
				solo, err := tc.pa.AnnealContext(context.Background(), prob, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				for i := range solo {
					if batch[r][i] != solo[i] {
						t.Fatalf("replica=%d spin=%d: batched %d != solo %d", r, i, batch[r][i], solo[i])
					}
				}
			}
		})
	}
}

// TestBatchProblemValidation covers the shared-or-per-replica problem slice
// contract.
func TestBatchProblemValidation(t *testing.T) {
	p3 := NewIsingProblem(3)
	p4 := NewIsingProblem(4)
	sa := SimulatedAnnealer{Sweeps: 4}
	if _, err := sa.AnnealBatchContext(context.Background(), []*IsingProblem{p3}, nil); err == nil {
		t.Fatal("empty read group accepted")
	}
	if _, err := sa.AnnealBatchContext(context.Background(), []*IsingProblem{p3, p3}, seedRngs(1, 2, 3)); err == nil {
		t.Fatal("2 problems for 3 replicas accepted")
	}
	if _, err := sa.AnnealBatchContext(context.Background(), []*IsingProblem{p3, p4, p3}, seedRngs(1, 2, 3)); err == nil {
		t.Fatal("mismatched spin counts accepted")
	}
	if _, err := sa.AnnealBatchContext(context.Background(), []*IsingProblem{p3}, seedRngs(1, 2, 3)); err != nil {
		t.Fatalf("valid shared-problem group rejected: %v", err)
	}
}

// TestBatchContextCancellation checks the whole group stops with partial
// results and a wrapped context error.
func TestBatchContextCancellation(t *testing.T) {
	p := randomIsing(rand.New(rand.NewSource(4403)), 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sa := SimulatedAnnealer{Sweeps: 1000}
	got, err := sa.AnnealBatchContext(ctx, []*IsingProblem{p}, seedRngs(5, 6))
	if err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	if len(got) != 2 || len(got[0]) != p.N() {
		t.Fatalf("cancelled batch returned malformed partial results: %d groups", len(got))
	}
}

// TestDeviceBatchReadsGroupSizeInvariant pins the batched device contract:
// read r depends only on (seed, r), so changing the group size must not
// change any sample. ICE noise is left at device defaults so the perturbed
// per-replica path is exercised.
func TestDeviceBatchReadsGroupSizeInvariant(t *testing.T) {
	q := smallQUBO()
	run := func(batch int) *Result {
		d := testDevice()
		d.SigmaH, d.SigmaJ = 0.02, 0.015
		d.BatchReads = batch
		res, err := d.Sample(q, 40, 20, 99)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small, large := run(4), run(64)
	if len(small.Assignments) != 40 || len(large.Assignments) != 40 {
		t.Fatalf("read counts wrong: %d/%d", len(small.Assignments), len(large.Assignments))
	}
	for r := range small.Assignments {
		if small.Energies[r] != large.Energies[r] {
			t.Fatalf("read=%d: energy %v (batch 4) != %v (batch 64)", r, small.Energies[r], large.Energies[r])
		}
		for i := range small.Assignments[r] {
			if small.Assignments[r][i] != large.Assignments[r][i] {
				t.Fatalf("read=%d bit=%d: assignment differs across group sizes", r, i)
			}
		}
	}
	if small.ChainBreakFraction != large.ChainBreakFraction {
		t.Fatalf("chain break fraction %v != %v across group sizes", small.ChainBreakFraction, large.ChainBreakFraction)
	}
}

// TestDeviceBatchReadsFindOptimum checks batched sampling still solves the
// toy problem and that logical energies match the assignments.
func TestDeviceBatchReadsFindOptimum(t *testing.T) {
	d := testDevice()
	d.BatchReads = 16
	q := smallQUBO()
	res, err := d.Sample(q, 50, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for i, x := range res.Assignments {
		if v := q.Value(x); math.Abs(v-res.Energies[i]) > 1e-9 {
			t.Fatal("energy mismatch with assignment")
		} else if v < best {
			best = v
		}
	}
	if best > -2+1e-9 {
		t.Fatalf("batched noiseless annealer best energy %v, want -2", best)
	}
}

// TestDeviceBatchReadsGaugeFallback ensures gauge averaging transparently
// falls back to the sequential read loop (batched mode would change its
// sample stream) and still produces valid output.
func TestDeviceBatchReadsGaugeFallback(t *testing.T) {
	d := testDevice()
	d.BatchReads = 16
	d.GaugeAveraging = true
	q := smallQUBO()
	res, err := d.Sample(q, 12, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 12 {
		t.Fatalf("gauge fallback returned %d reads, want 12", len(res.Assignments))
	}
	for i, x := range res.Assignments {
		if v := q.Value(x); math.Abs(v-res.Energies[i]) > 1e-9 {
			t.Fatal("energy mismatch with assignment")
		}
	}
}
