package anneal

import (
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/qubo"
)

func TestGaugePreservesEnergyLandscape(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	p := NewIsingProblem(6)
	for i := range p.H {
		p.H[i] = rng.NormFloat64()
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if rng.Float64() < 0.6 {
				p.AddCoupling(i, j, rng.NormFloat64())
			}
		}
	}
	g := NewGaugeTransform(6, rng)
	tp := g.Apply(p)
	// For every configuration s of the transformed problem, the energy
	// equals the original energy of Undo(s).
	for bits := 0; bits < 64; bits++ {
		s := make([]int8, 6)
		for i := range s {
			if bits&(1<<i) != 0 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		if math.Abs(tp.Energy(s)-p.Energy(g.Undo(s))) > 1e-9 {
			t.Fatalf("gauge broke the landscape at %b", bits)
		}
	}
}

func TestGaugeUndoIsInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g := NewGaugeTransform(5, rng)
	s := []int8{1, -1, 1, 1, -1}
	if got := g.Undo(g.Undo(s)); got[0] != 1 || got[1] != -1 || got[4] != -1 {
		t.Fatal("double undo changed spins")
	}
}

func TestDeviceGaugeAveragingStillSolves(t *testing.T) {
	d := testDevice()
	d.GaugeAveraging = true
	q := qubo.New(3)
	q.AddLinear(0, 2)
	q.AddLinear(1, -1)
	q.AddLinear(2, -1)
	q.AddQuad(0, 1, 1)
	q.AddQuad(0, 2, 1)
	res, err := d.Sample(q, 40, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	best := res.Energies[0]
	for _, e := range res.Energies {
		if e < best {
			best = e
		}
	}
	if best > -2+1e-9 {
		t.Fatalf("gauge-averaged device best energy %v, want -2", best)
	}
}
