package anneal

import (
	"context"
	"fmt"

	"quantumjoin/internal/obs"
	"quantumjoin/internal/qubo"
)

// BatchJob is one QUBO sampling job in a batch: the logical problem plus
// the per-job sampling knobs SampleContext would take as arguments. Zero
// Reads or AnnealTimeMicros are rejected per job, mirroring SampleContext.
type BatchJob struct {
	Q                *qubo.QUBO
	Reads            int
	AnnealTimeMicros float64
	Seed             int64
	// InitialState, when non-nil, warm-starts the job (see
	// Device.InitialState); other jobs in the batch are unaffected.
	InitialState []bool
}

// scratchPool hands out a reusable perturbation buffer per physical
// problem: the first request for a problem allocates a structural copy,
// every later request (the remaining reads of the job) refreshes it with
// CopyInto instead of allocating. Sampling is single-threaded per job, so
// no locking is needed.
type scratchPool struct {
	source *IsingProblem
	buf    *IsingProblem
}

func (s *scratchPool) perturbCopy(p *IsingProblem) *IsingProblem {
	if s.source != p {
		s.source = p
		s.buf = p.Copy()
		return s.buf
	}
	p.CopyInto(s.buf)
	return s.buf
}

// SampleBatchContext sweeps many QUBO instances through the annealer in
// one array pass: each job is embedded once, and the read loops run with a
// shared per-job perturbation scratch, so the ICE-noise copy that the
// standalone path allocates on every read is replaced by an in-place
// refresh. Results are bit-identical to calling SampleContext per job with
// the same seed (the RNG streams are per job).
//
// Returned slices are index-aligned with jobs. A job error (embedding
// failure, invalid knobs, interruption) fails that job only; once the
// context expires, remaining jobs fail fast with the context error and the
// interrupted job keeps its partial reads, as in SampleContext.
func (d *Device) SampleBatchContext(ctx context.Context, jobs []BatchJob) ([]*Result, []error) {
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	ctx, span := obs.StartSpan(ctx, "anneal.sample_batch")
	span.SetAttr("jobs", len(jobs))
	scratch := &scratchPool{}
	for i, job := range jobs {
		if err := ctx.Err(); err != nil {
			errs[i] = fmt.Errorf("anneal: batch interrupted before job %d/%d: %w", i, len(jobs), err)
			continue
		}
		if job.Reads <= 0 {
			errs[i] = fmt.Errorf("anneal: reads must be positive, got %d", job.Reads)
			continue
		}
		if job.AnnealTimeMicros <= 0 {
			errs[i] = fmt.Errorf("anneal: annealing time must be positive, got %v", job.AnnealTimeMicros)
			continue
		}
		dev := d
		if job.InitialState != nil {
			warm := *d
			warm.InitialState = job.InitialState
			dev = &warm
		}
		emb, err := dev.EmbedOnlyContext(ctx, job.Q, job.Seed)
		if err != nil {
			errs[i] = err
			continue
		}
		results[i], errs[i] = dev.sampleEmbeddedContext(ctx, job.Q, emb, job.Reads, job.AnnealTimeMicros, job.Seed, scratch)
	}
	span.End(nil)
	return results, errs
}
