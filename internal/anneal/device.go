package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"quantumjoin/internal/minorembed"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/qubo"
	"quantumjoin/internal/topology"
)

// Device simulates a quantum annealer with a fixed hardware graph and
// analog control characteristics. The defaults approximate the D-Wave
// Advantage system used in §4.2.2.
type Device struct {
	// Graph is the hardware connectivity (e.g. Pegasus P16).
	Graph *topology.Graph
	// HRange and JRange bound programmable fields/couplings after
	// rescaling (Advantage: |h| <= 4, |J| <= 1).
	HRange, JRange float64
	// SigmaH and SigmaJ are the per-read Gaussian control errors (ICE) in
	// rescaled units.
	SigmaH, SigmaJ float64
	// RelativeChainStrength scales the ferromagnetic chain coupling
	// relative to the largest logical coefficient (D-Wave practice ~1.4;
	// the paper determines chain strengths empirically per problem size).
	RelativeChainStrength float64
	// SweepsPerMicrosecond converts annealing time to the sampler's sweep
	// budget.
	SweepsPerMicrosecond float64
	// BetaMax is the final inverse temperature of the anneal in rescaled
	// units; finite values model the QPU's operating temperature.
	BetaMax float64
	// EmbeddingTries forwards to the minor embedder.
	EmbeddingTries int
	// NewSampler constructs the annealing dynamics for a given sweep
	// budget; nil selects classical simulated annealing. Use
	// PIMCSamplerFactory for path-integral (transverse-field) dynamics.
	NewSampler SamplerFactory
	// GaugeAveraging applies a fresh spin-reversal transform per read
	// (standard D-Wave practice against systematic analog biases).
	GaugeAveraging bool
	// InitialState, when non-nil, is a logical warm-start assignment (one
	// bool per QUBO variable): every read starts from this configuration
	// expanded onto the embedding's chains — the reverse-annealing pattern
	// D-Wave exposes for refining a classical incumbent. The default
	// sampler then starts its schedule colder (BetaMin 1 instead of 0.05)
	// so thermal fluctuations perturb the incumbent instead of erasing it.
	// Devices are shared across requests; callers warm-starting a single
	// solve should set this on a shallow copy of the device.
	InitialState []bool
	// BatchReads, when > 1, groups that many reads into one interleaved
	// replica sweep (AnnealBatchContext): the problem arrays are walked once
	// per sweep for the whole group instead of once per read. Each read then
	// draws from its own salted RNG stream — a different (equally valid)
	// sample set than the sequential mode's single shared stream, which is
	// why the default 0 keeps the legacy sequential loop and its pinned
	// experiment outputs. Gauge averaging and custom sampler factories that
	// produce types other than SimulatedAnnealer/PathIntegralAnnealer fall
	// back to sequential reads.
	BatchReads int
}

// Annealer produces one spin configuration per read.
type Annealer interface {
	Anneal(p *IsingProblem, rng *rand.Rand) []int8
}

// ContextAnnealer is an Annealer whose reads honour context cancellation
// mid-read; SimulatedAnnealer and PathIntegralAnnealer both implement it.
type ContextAnnealer interface {
	AnnealContext(ctx context.Context, p *IsingProblem, rng *rand.Rand) ([]int8, error)
}

// WarmStarter is implemented by samplers whose reads can start from a
// given spin configuration instead of a random one (SimulatedAnnealer and
// PathIntegralAnnealer both do). WarmStart returns a seeded copy and must
// not retain or mutate s beyond the returned sampler's reads.
type WarmStarter interface {
	WarmStart(s []int8) Annealer
}

// SamplerFactory builds an Annealer for a sweep budget derived from the
// requested annealing time.
type SamplerFactory func(sweeps int) Annealer

// PIMCSamplerFactory returns a factory for path-integral Monte Carlo
// dynamics with the given Trotter number.
func PIMCSamplerFactory(slices int) SamplerFactory {
	return func(sweeps int) Annealer {
		return PathIntegralAnnealer{Slices: slices, Sweeps: sweeps}
	}
}

// NewAdvantage returns a device modelled after the D-Wave Advantage
// (Pegasus P16, 5640 qubits). Construction generates the Pegasus graph and
// is somewhat expensive; reuse the device across samples.
func NewAdvantage() *Device {
	return NewDevice(topology.Advantage())
}

// NewDevice wraps an arbitrary hardware graph with Advantage-like analog
// characteristics.
func NewDevice(g *topology.Graph) *Device {
	return &Device{
		Graph:  g,
		HRange: 4, JRange: 1,
		SigmaH: 0.02, SigmaJ: 0.015,
		RelativeChainStrength: 1.4,
		SweepsPerMicrosecond:  3,
		BetaMax:               6,
		EmbeddingTries:        12,
	}
}

// Result is the outcome of sampling one QUBO on the device.
type Result struct {
	// Assignments are the unembedded logical samples.
	Assignments [][]bool
	// Energies are the logical QUBO values of the samples.
	Energies []float64
	// Embedding is the minor embedding used.
	Embedding *minorembed.Embedding
	// PhysicalQubits is the embedding footprint (Figure 3's metric).
	PhysicalQubits int
	// ChainBreakFraction is the fraction of (read, chain) pairs whose
	// physical qubits disagreed and were resolved by majority vote.
	ChainBreakFraction float64
	// AnnealTimeMicros echoes the requested annealing time.
	AnnealTimeMicros float64
}

// EmbedOnly computes the minor embedding of the QUBO's interaction graph
// without sampling — sufficient for the Figure 3 scaling study.
func (d *Device) EmbedOnly(q *qubo.QUBO, seed int64) (*minorembed.Embedding, error) {
	return d.EmbedOnlyContext(context.Background(), q, seed)
}

// EmbedOnlyContext is EmbedOnly with cancellation threaded into the
// embedding heuristic's restart and refinement loops.
func (d *Device) EmbedOnlyContext(ctx context.Context, q *qubo.QUBO, seed int64) (*minorembed.Embedding, error) {
	return minorembed.EmbedContext(ctx, q.AdjacencyLists(), d.Graph, minorembed.Options{
		Tries: d.EmbeddingTries,
		Seed:  seed,
	})
}

// Sample embeds the QUBO and draws reads samples at the given annealing
// time (µs). Chain couplings use the device's relative chain strength;
// each read sees fresh ICE noise.
func (d *Device) Sample(q *qubo.QUBO, reads int, annealTimeMicros float64, seed int64) (*Result, error) {
	return d.SampleContext(context.Background(), q, reads, annealTimeMicros, seed)
}

// SampleContext is Sample with cancellation: the context is checked before
// the embedding and between reads, and is forwarded into each read when the
// sampler supports mid-read cancellation (ContextAnnealer). On expiry it
// returns the reads collected so far together with the context error
// wrapped in partial-progress information.
func (d *Device) SampleContext(ctx context.Context, q *qubo.QUBO, reads int, annealTimeMicros float64, seed int64) (*Result, error) {
	if reads <= 0 {
		return nil, fmt.Errorf("anneal: reads must be positive, got %d", reads)
	}
	if annealTimeMicros <= 0 {
		return nil, fmt.Errorf("anneal: annealing time must be positive, got %v", annealTimeMicros)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("anneal: cancelled before embedding: %w", err)
	}
	emb, err := d.EmbedOnlyContext(ctx, q, seed)
	if err != nil {
		return nil, err
	}
	return d.SampleEmbeddedContext(ctx, q, emb, reads, annealTimeMicros, seed)
}

// SampleEmbedded is Sample with a precomputed embedding (reuse across
// annealing-time sweeps, as the paper does).
func (d *Device) SampleEmbedded(q *qubo.QUBO, emb *minorembed.Embedding, reads int, annealTimeMicros float64, seed int64) (*Result, error) {
	return d.SampleEmbeddedContext(context.Background(), q, emb, reads, annealTimeMicros, seed)
}

// SampleEmbeddedContext is SampleEmbedded with cancellation (see
// SampleContext for the semantics). When the context carries an obs span
// the read loop runs under an "anneal.sample" child span recording the
// read/sweep budget and the chain-break fraction.
func (d *Device) SampleEmbeddedContext(ctx context.Context, q *qubo.QUBO, emb *minorembed.Embedding, reads int, annealTimeMicros float64, seed int64) (*Result, error) {
	ctx, span := obs.StartSpan(ctx, "anneal.sample")
	span.SetAttr("reads", reads)
	res, err := d.sampleEmbeddedContext(ctx, q, emb, reads, annealTimeMicros, seed, nil)
	if res != nil {
		span.SetAttr("sweeps", int(annealTimeMicros*d.SweepsPerMicrosecond))
		span.SetAttr("chain_break_fraction", res.ChainBreakFraction)
		span.SetAttr("physical_qubits", res.PhysicalQubits)
	}
	span.End(err)
	return res, err
}

// sampleEmbeddedContext runs the read loop. scratch, when non-nil, is a
// reusable perturbation buffer (structurally a copy of the physical
// problem) that replaces the per-read Copy allocation — the batch fast
// path passes one scratch per job and amortises it across all reads.
func (d *Device) sampleEmbeddedContext(ctx context.Context, q *qubo.QUBO, emb *minorembed.Embedding, reads int, annealTimeMicros float64, seed int64, scratch *scratchPool) (*Result, error) {
	physical, chainOf, err := d.buildPhysical(q, emb)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	sweeps := int(annealTimeMicros * d.SweepsPerMicrosecond)
	if sweeps < 4 {
		sweeps = 4
	}
	var sampler Annealer
	if d.NewSampler != nil {
		sampler = d.NewSampler(sweeps)
	} else {
		sa := SimulatedAnnealer{Sweeps: sweeps, BetaMin: 0.05, BetaMax: d.BetaMax}
		if d.InitialState != nil {
			// Reverse-annealing style: start cold enough that the warm
			// start survives the early sweeps.
			sa.BetaMin = 1
		}
		sampler = sa
	}
	// Expand the logical warm start onto the chains: every physical qubit
	// of a chain starts at its variable's value.
	var physInit []int8
	if d.InitialState != nil {
		if len(d.InitialState) != q.N() {
			return nil, fmt.Errorf("anneal: warm start has %d variables, QUBO has %d", len(d.InitialState), q.N())
		}
		physInit = make([]int8, len(chainOf))
		for v, chain := range emb.Chains {
			spin := int8(-1)
			if d.InitialState[v] {
				spin = 1
			}
			for _, pq := range chain {
				physInit[chainOf[pq].spinIndex] = spin
			}
		}
	}
	res := &Result{
		Embedding:        emb,
		PhysicalQubits:   emb.PhysicalQubits(),
		AnnealTimeMicros: annealTimeMicros,
	}
	if d.BatchReads > 1 && !d.GaugeAveraging {
		if done, err := d.sampleReadsBatched(ctx, q, emb, physical, chainOf, physInit, sampler, reads, seed, res); done {
			return res, err
		}
	}
	breaks, total := 0, 0
	for r := 0; r < reads; r++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("anneal: sampling interrupted after %d/%d reads: %w", r, reads, err)
		}
		prob := physical
		if d.SigmaH > 0 || d.SigmaJ > 0 {
			if scratch != nil {
				prob = scratch.perturbCopy(physical)
			} else {
				prob = physical.Copy()
			}
			prob.Perturb(d.SigmaH, d.SigmaJ, rng)
		}
		var gauge GaugeTransform
		if d.GaugeAveraging {
			gauge = NewGaugeTransform(prob.N(), rng)
			prob = gauge.Apply(prob)
		}
		readSampler := sampler
		if physInit != nil {
			if ws, ok := sampler.(WarmStarter); ok {
				init := physInit
				if d.GaugeAveraging {
					// The gauge relabels spins s → g·s; seed the read in
					// the transformed frame (Undo is its own inverse).
					init = gauge.Undo(physInit)
				}
				readSampler = ws.WarmStart(init)
			}
		}
		var spins []int8
		if ctxReadSampler, ok := readSampler.(ContextAnnealer); ok {
			var readErr error
			spins, readErr = ctxReadSampler.AnnealContext(ctx, prob, rng)
			if readErr != nil {
				return res, fmt.Errorf("anneal: sampling interrupted after %d/%d reads: %w", r, reads, readErr)
			}
		} else {
			spins = readSampler.Anneal(prob, rng)
		}
		if d.GaugeAveraging {
			spins = gauge.Undo(spins)
		}
		x := make([]bool, q.N())
		for v, chain := range emb.Chains {
			up := 0
			for _, pq := range chain {
				if spins[chainOf[pq].spinIndex] > 0 {
					up++
				}
			}
			if up*2 > len(chain) {
				x[v] = true
			} else if up*2 == len(chain) {
				x[v] = rng.Intn(2) == 0
			}
			if up != 0 && up != len(chain) {
				breaks++
			}
			total++
		}
		res.Assignments = append(res.Assignments, x)
		res.Energies = append(res.Energies, q.Value(x))
	}
	if total > 0 {
		res.ChainBreakFraction = float64(breaks) / float64(total)
	}
	return res, nil
}

// readSeed derives the independent RNG stream of read r in batched mode
// (sequential mode shares one seed ^ 0x5eed stream across all reads).
func readSeed(seed int64, r int) int64 {
	return seed ^ 0x5eed ^ int64(uint64(r+1)*0x9e3779b97f4a7c15)
}

// sampleReadsBatched runs the read loop in groups of BatchReads interleaved
// replicas. Reported done=false means the sampler type has no batched
// implementation and the caller should fall back to the sequential loop.
// Outputs are invariant to the group size: read r's RNG stream, ICE
// perturbation, and unembedding tie-breaks depend only on (seed, r).
func (d *Device) sampleReadsBatched(ctx context.Context, q *qubo.QUBO, emb *minorembed.Embedding, physical *IsingProblem, chainOf map[int]physQubit, physInit []int8, sampler Annealer, reads int, seed int64, res *Result) (bool, error) {
	type batchAnnealer interface {
		AnnealBatchContext(ctx context.Context, probs []*IsingProblem, rngs []*rand.Rand) ([][]int8, error)
	}
	var runGroup func(probs []*IsingProblem, rngs []*rand.Rand) ([][]int8, error)
	switch sam := sampler.(type) {
	case SimulatedAnnealer:
		sam.InitialState = physInit
		runGroup = func(probs []*IsingProblem, rngs []*rand.Rand) ([][]int8, error) {
			return sam.AnnealBatchContext(ctx, probs, rngs)
		}
	case PathIntegralAnnealer:
		sam.InitialState = physInit
		runGroup = func(probs []*IsingProblem, rngs []*rand.Rand) ([][]int8, error) {
			return sam.AnnealBatchContext(ctx, probs, rngs)
		}
	default:
		if ba, ok := sampler.(batchAnnealer); ok {
			ws, warm := sampler.(WarmStarter)
			runGroup = func(probs []*IsingProblem, rngs []*rand.Rand) ([][]int8, error) {
				if physInit != nil && warm {
					if wba, ok := ws.WarmStart(physInit).(batchAnnealer); ok {
						return wba.AnnealBatchContext(ctx, probs, rngs)
					}
				}
				return ba.AnnealBatchContext(ctx, probs, rngs)
			}
		} else {
			return false, nil
		}
	}
	noisy := d.SigmaH > 0 || d.SigmaJ > 0
	group := d.BatchReads
	if group > reads {
		group = reads
	}
	var scratch []*IsingProblem
	if noisy {
		scratch = make([]*IsingProblem, group)
		for j := range scratch {
			scratch[j] = physical.Copy()
		}
	}
	rngs := make([]*rand.Rand, group)
	probs := make([]*IsingProblem, group)
	breaks, total := 0, 0
	fail := func(completed int, err error) (bool, error) {
		if total > 0 {
			res.ChainBreakFraction = float64(breaks) / float64(total)
		}
		return true, fmt.Errorf("anneal: sampling interrupted after %d/%d reads: %w", completed, reads, err)
	}
	for base := 0; base < reads; base += group {
		if err := ctx.Err(); err != nil {
			return fail(base, err)
		}
		cnt := group
		if base+cnt > reads {
			cnt = reads - base
		}
		for j := 0; j < cnt; j++ {
			rngs[j] = rand.New(rand.NewSource(readSeed(seed, base+j)))
			if noisy {
				physical.CopyInto(scratch[j])
				scratch[j].Perturb(d.SigmaH, d.SigmaJ, rngs[j])
				probs[j] = scratch[j]
			}
		}
		var spins [][]int8
		var err error
		if noisy {
			spins, err = runGroup(probs[:cnt], rngs[:cnt])
		} else {
			shared := [1]*IsingProblem{physical}
			spins, err = runGroup(shared[:], rngs[:cnt])
		}
		if err != nil {
			return fail(base, err)
		}
		for j := 0; j < cnt; j++ {
			rng := rngs[j]
			x := make([]bool, q.N())
			for v, chain := range emb.Chains {
				up := 0
				for _, pq := range chain {
					if spins[j][chainOf[pq].spinIndex] > 0 {
						up++
					}
				}
				if up*2 > len(chain) {
					x[v] = true
				} else if up*2 == len(chain) {
					x[v] = rng.Intn(2) == 0
				}
				if up != 0 && up != len(chain) {
					breaks++
				}
				total++
			}
			res.Assignments = append(res.Assignments, x)
			res.Energies = append(res.Energies, q.Value(x))
		}
	}
	if total > 0 {
		res.ChainBreakFraction = float64(breaks) / float64(total)
	}
	return true, nil
}

type physQubit struct {
	spinIndex int
	variable  int
}

// buildPhysical constructs the embedded, rescaled Ising problem: logical
// fields are split evenly across chain qubits, logical couplings evenly
// across all available inter-chain couplers, and chain qubits are tied
// with a ferromagnetic coupling −chainStrength.
func (d *Device) buildPhysical(q *qubo.QUBO, emb *minorembed.Embedding) (*IsingProblem, map[int]physQubit, error) {
	if len(emb.Chains) != q.N() {
		return nil, nil, fmt.Errorf("anneal: embedding has %d chains for %d variables", len(emb.Chains), q.N())
	}
	logical := q.ToIsing()
	// Index used physical qubits densely.
	chainOf := make(map[int]physQubit)
	for v, chain := range emb.Chains {
		for _, pq := range chain {
			if _, dup := chainOf[pq]; dup {
				return nil, nil, fmt.Errorf("anneal: qubit %d appears in multiple chains", pq)
			}
			chainOf[pq] = physQubit{spinIndex: len(chainOf), variable: v}
		}
	}
	p := NewIsingProblem(len(chainOf))
	p.Const = logical.Offset

	maxAbs := 0.0
	for _, h := range logical.H {
		if a := math.Abs(h); a > maxAbs {
			maxAbs = a
		}
	}
	for _, j := range logical.J {
		if a := math.Abs(j); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	chainStrength := d.RelativeChainStrength * maxAbs

	// Fields split across chains.
	for v, chain := range emb.Chains {
		share := logical.H[v] / float64(len(chain))
		for _, pq := range chain {
			p.H[chainOf[pq].spinIndex] += share
		}
	}
	// Logical couplings split across available physical couplers. Iterate
	// in sorted pair order, not map order: adjacency-list order determines
	// both Perturb's noise-to-coupling mapping and float accumulation
	// order, so the physical problem must come out bit-identical every
	// time the same QUBO is built (repeated Sample calls at one seed, and
	// the batched-read group-size invariance, rely on it).
	pairs := make([]qubo.Pair, 0, len(logical.J))
	for pair := range logical.J {
		pairs = append(pairs, pair)
	}
	slices.SortFunc(pairs, func(a, b qubo.Pair) int {
		if a.I != b.I {
			return a.I - b.I
		}
		return a.J - b.J
	})
	for _, pair := range pairs {
		j := logical.J[pair]
		var couplers [][2]int
		inB := make(map[int]bool)
		for _, pq := range emb.Chains[pair.J] {
			inB[pq] = true
		}
		for _, pa := range emb.Chains[pair.I] {
			for _, nb := range d.Graph.Neighbors(pa) {
				if inB[nb] {
					couplers = append(couplers, [2]int{pa, nb})
				}
			}
		}
		if len(couplers) == 0 {
			return nil, nil, fmt.Errorf("anneal: no physical coupler for logical edge (%d,%d)", pair.I, pair.J)
		}
		share := j / float64(len(couplers))
		for _, c := range couplers {
			p.AddCoupling(chainOf[c[0]].spinIndex, chainOf[c[1]].spinIndex, share)
		}
	}
	// Ferromagnetic chain couplings along a spanning structure of each
	// chain (every hardware edge internal to the chain).
	for _, chain := range emb.Chains {
		inChain := make(map[int]bool, len(chain))
		for _, pq := range chain {
			inChain[pq] = true
		}
		for _, pa := range chain {
			for _, nb := range d.Graph.Neighbors(pa) {
				if inChain[nb] && pa < nb {
					p.AddCoupling(chainOf[pa].spinIndex, chainOf[nb].spinIndex, -chainStrength)
				}
			}
		}
	}
	// Rescale into the programmable range: the limited analog resolution
	// is what makes wide coefficient ranges (penalty weights vs. costs)
	// problematic on annealers (§3.4).
	scale := 1.0
	if m := p.MaxAbs(); m > d.JRange {
		scale = d.JRange / m
	}
	p.Scale(scale)
	return p, chainOf, nil
}

// TimingModel mirrors D-Wave's access-time accounting: programming once
// per problem, then per read the anneal, readout and a thermalisation
// delay. Times in microseconds.
type TimingModel struct {
	ProgrammingMicros float64
	ReadoutMicros     float64
	DelayMicros       float64
}

// DefaultTimingModel returns Advantage-like constants.
func DefaultTimingModel() TimingModel {
	return TimingModel{ProgrammingMicros: 15000, ReadoutMicros: 120, DelayMicros: 20}
}

// QPUAccessMicros returns the total QPU access time for a sampling job.
func (t TimingModel) QPUAccessMicros(reads int, annealTimeMicros float64) float64 {
	return t.ProgrammingMicros + float64(reads)*(annealTimeMicros+t.ReadoutMicros+t.DelayMicros)
}
