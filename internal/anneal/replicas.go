package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// Batched multi-seed reads: instead of re-walking the problem arrays once
// per read, a whole group of independent reads ("replicas") advances
// through one interleaved sweep. Spins are stored replica-strided
// (spins[i*R+r] is spin i of replica r), so each spin's fields and
// adjacency list are read once per sweep for the entire group — the strided
// pass that makes multi-restart sampling memory-bound on the problem, not
// on the restart count.
//
// Each replica owns its RNG and consumes it in exactly the order a solo
// AnnealContext read would (initial spins, then per sweep per spin a single
// uniform when the flip is uphill), so batched reads are bit-identical to
// sequential reads with the same per-read RNGs.

// checkBatchProblems validates the shared-or-per-replica problem slice and
// returns the spin count.
func checkBatchProblems(probs []*IsingProblem, nReplicas int) (int, error) {
	if nReplicas == 0 {
		return 0, fmt.Errorf("anneal: batched read group is empty")
	}
	if len(probs) != 1 && len(probs) != nReplicas {
		return 0, fmt.Errorf("anneal: %d problems for %d replicas (want 1 shared or one per replica)", len(probs), nReplicas)
	}
	n := probs[0].N()
	for _, p := range probs[1:] {
		if p.N() != n {
			return 0, fmt.Errorf("anneal: batched problems disagree on spin count: %d != %d", p.N(), n)
		}
	}
	return n, nil
}

// unstride copies a replica-strided spin buffer into one slice per replica.
func unstride(spins []int8, n, nReplicas int) [][]int8 {
	out := make([][]int8, nReplicas)
	for r := range out {
		s := make([]int8, n)
		for i := 0; i < n; i++ {
			s[i] = spins[i*nReplicas+r]
		}
		out[r] = s
	}
	return out
}

// AnnealBatchContext runs len(rngs) independent reads through one
// interleaved sweep. probs carries either a single problem shared by every
// replica or one (e.g. ICE-perturbed) problem per replica. Replica r's
// result is bit-identical to a solo AnnealContext read on probs[min(r,
// len(probs)-1)] with rngs[r]. On context expiry the whole group stops,
// returning the spin configurations reached so far with the wrapped error.
func (sa SimulatedAnnealer) AnnealBatchContext(ctx context.Context, probs []*IsingProblem, rngs []*rand.Rand) ([][]int8, error) {
	R := len(rngs)
	n, err := checkBatchProblems(probs, R)
	if err != nil {
		return nil, err
	}
	if sa.Sweeps <= 0 {
		sa.Sweeps = 64
	}
	if sa.BetaMin == 0 {
		sa.BetaMin = 0.1
	}
	if sa.BetaMax == 0 {
		sa.BetaMax = 10
	}
	shared := len(probs) == 1
	probFor := func(r int) *IsingProblem {
		if shared {
			return probs[0]
		}
		return probs[r]
	}
	spins := make([]int8, n*R)
	// Initial draws per replica in replica order: each rng sees exactly the
	// sequence its solo read would.
	for r := 0; r < R; r++ {
		if len(sa.InitialState) == n {
			for i := 0; i < n; i++ {
				spins[i*R+r] = sa.InitialState[i]
			}
			continue
		}
		rng := rngs[r]
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				spins[i*R+r] = 1
			} else {
				spins[i*R+r] = -1
			}
		}
	}
	local := make([]float64, n*R)
	for r := 0; r < R; r++ {
		p := probFor(r)
		for i := 0; i < n; i++ {
			f := p.H[i]
			for _, c := range p.Adj[i] {
				f += c.J * float64(spins[c.To*R+r])
			}
			local[i*R+r] = f
		}
	}
	ratio := math.Pow(sa.BetaMax/sa.BetaMin, 1/math.Max(1, float64(sa.Sweeps-1)))
	beta := sa.BetaMin
	for sweep := 0; sweep < sa.Sweeps; sweep++ {
		if sweep%ctxCheckSweeps == 0 {
			if err := ctx.Err(); err != nil {
				return unstride(spins, n, R), fmt.Errorf("anneal: batched reads interrupted after %d/%d sweeps: %w", sweep, sa.Sweeps, err)
			}
		}
		for i := 0; i < n; i++ {
			base := i * R
			sharedAdj := probs[0].Adj[i]
			for r := 0; r < R; r++ {
				adj := sharedAdj
				if !shared {
					adj = probs[r].Adj[i]
				}
				s := float64(spins[base+r])
				dE := -2 * s * local[base+r]
				if dE <= 0 || rngs[r].Float64() < math.Exp(-beta*dE) {
					spins[base+r] = -spins[base+r]
					for _, c := range adj {
						local[c.To*R+r] -= 2 * c.J * s
					}
				}
			}
		}
		beta *= ratio
	}
	return unstride(spins, n, R), nil
}

// energyStrided is IsingProblem.Energy over one replica of a strided spin
// buffer, summing in the same order so energies compare bit-identically.
func energyStrided(p *IsingProblem, spins []int8, r, R int) float64 {
	e := p.Const
	for i, h := range p.H {
		e += h * float64(spins[i*R+r])
	}
	for i, nbrs := range p.Adj {
		for _, c := range nbrs {
			if c.To > i {
				e += c.J * float64(spins[i*R+r]) * float64(spins[c.To*R+r])
			}
		}
	}
	return e
}

// AnnealBatchContext runs len(rngs) independent PIMC reads through one
// interleaved sweep over all Trotter slices; see
// SimulatedAnnealer.AnnealBatchContext for the problem-sharing and
// bit-identity contract.
func (pa PathIntegralAnnealer) AnnealBatchContext(ctx context.Context, probs []*IsingProblem, rngs []*rand.Rand) ([][]int8, error) {
	R := len(rngs)
	n, err := checkBatchProblems(probs, R)
	if err != nil {
		return nil, err
	}
	if pa.Slices <= 0 {
		pa.Slices = 8
	}
	if pa.Sweeps <= 0 {
		pa.Sweeps = 64
	}
	if pa.Gamma0 == 0 {
		if pa.InitialState != nil {
			pa.Gamma0 = 0.5
		} else {
			pa.Gamma0 = 3
		}
	}
	if pa.Beta == 0 {
		if pa.InitialState != nil {
			pa.Beta = 32
		} else {
			pa.Beta = 8
		}
	}
	shared := len(probs) == 1
	probFor := func(r int) *IsingProblem {
		if shared {
			return probs[0]
		}
		return probs[r]
	}
	P := pa.Slices
	betaSlice := pa.Beta / float64(P)

	spins := make([][]int8, P)
	for k := range spins {
		spins[k] = make([]int8, n*R)
	}
	// A solo read draws its replicas slice by slice; keep that (k, i) order
	// per rng.
	for r := 0; r < R; r++ {
		if len(pa.InitialState) == n {
			for k := 0; k < P; k++ {
				for i := 0; i < n; i++ {
					spins[k][i*R+r] = pa.InitialState[i]
				}
			}
			continue
		}
		rng := rngs[r]
		for k := 0; k < P; k++ {
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					spins[k][i*R+r] = 1
				} else {
					spins[k][i*R+r] = -1
				}
			}
		}
	}
	local := make([][]float64, P)
	for k := range local {
		local[k] = make([]float64, n*R)
		for r := 0; r < R; r++ {
			p := probFor(r)
			for i := 0; i < n; i++ {
				f := p.H[i]
				for _, c := range p.Adj[i] {
					f += c.J * float64(spins[k][c.To*R+r])
				}
				local[k][i*R+r] = f
			}
		}
	}

	bestReplicas := func() [][]int8 {
		out := make([][]int8, R)
		for r := 0; r < R; r++ {
			p := probFor(r)
			bestK := 0
			bestE := energyStrided(p, spins[0], r, R)
			for k := 1; k < P; k++ {
				if e := energyStrided(p, spins[k], r, R); e < bestE {
					bestE = e
					bestK = k
				}
			}
			s := make([]int8, n)
			for i := 0; i < n; i++ {
				s[i] = spins[bestK][i*R+r]
			}
			out[r] = s
		}
		return out
	}

	for sweep := 0; sweep < pa.Sweeps; sweep++ {
		if sweep%ctxCheckSweeps == 0 {
			if err := ctx.Err(); err != nil {
				return bestReplicas(), fmt.Errorf("anneal: batched PIMC reads interrupted after %d/%d sweeps: %w", sweep, pa.Sweeps, err)
			}
		}
		frac := float64(sweep) / math.Max(1, float64(pa.Sweeps-1))
		gamma := pa.Gamma0 * (1 - frac)
		if gamma < 1e-3 {
			gamma = 1e-3
		}
		jPerp := -0.5 / betaSlice * math.Log(math.Tanh(betaSlice*gamma))
		for k := 0; k < P; k++ {
			up := (k + 1) % P
			down := (k - 1 + P) % P
			for i := 0; i < n; i++ {
				base := i * R
				sharedAdj := probs[0].Adj[i]
				for r := 0; r < R; r++ {
					adj := sharedAdj
					if !shared {
						adj = probs[r].Adj[i]
					}
					s := float64(spins[k][base+r])
					dE := -2 * s * (local[k][base+r] + jPerp*(float64(spins[up][base+r])+float64(spins[down][base+r])))
					if dE <= 0 || rngs[r].Float64() < math.Exp(-betaSlice*dE) {
						spins[k][base+r] = -spins[k][base+r]
						for _, c := range adj {
							local[k][c.To*R+r] -= 2 * c.J * s
						}
					}
				}
			}
		}
	}
	return bestReplicas(), nil
}
