package anneal

import (
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/qubo"
	"quantumjoin/internal/topology"
)

func TestIsingProblemEnergy(t *testing.T) {
	p := NewIsingProblem(2)
	p.H[0] = 1
	p.H[1] = -0.5
	p.AddCoupling(0, 1, 2)
	p.Const = 3
	// s = (+1, +1): 3 + 1 - 0.5 + 2 = 5.5
	if e := p.Energy([]int8{1, 1}); e != 5.5 {
		t.Fatalf("energy = %v, want 5.5", e)
	}
	// s = (+1, -1): 3 + 1 + 0.5 - 2 = 2.5
	if e := p.Energy([]int8{1, -1}); e != 2.5 {
		t.Fatalf("energy = %v, want 2.5", e)
	}
}

func TestIsingScaleAndMaxAbs(t *testing.T) {
	p := NewIsingProblem(2)
	p.H[0] = -3
	p.AddCoupling(0, 1, 2)
	if p.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", p.MaxAbs())
	}
	p.Scale(0.5)
	if p.H[0] != -1.5 || p.MaxAbs() != 1.5 {
		t.Fatal("Scale wrong")
	}
}

func TestSelfCouplingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on self-coupling")
		}
	}()
	NewIsingProblem(2).AddCoupling(1, 1, 1)
}

func TestPerturbKeepsSymmetry(t *testing.T) {
	p := NewIsingProblem(3)
	p.AddCoupling(0, 1, 1)
	p.AddCoupling(1, 2, -1)
	rng := rand.New(rand.NewSource(1))
	p.Perturb(0.1, 0.1, rng)
	// Mirrored adjacency entries must stay equal.
	find := func(a, b int) float64 {
		for _, c := range p.Adj[a] {
			if c.To == b {
				return c.J
			}
		}
		t.Fatalf("missing coupling (%d,%d)", a, b)
		return 0
	}
	if find(0, 1) != find(1, 0) || find(1, 2) != find(2, 1) {
		t.Fatal("perturbation broke coupling symmetry")
	}
}

func TestSAFindsFerromagneticGroundState(t *testing.T) {
	// A ferromagnetic ring with a field: unique ground state all -1...
	// H = sum s_i + sum -2 s_i s_j: ground state everyone -1.
	p := NewIsingProblem(8)
	for i := range p.H {
		p.H[i] = 1
	}
	for i := 0; i < 8; i++ {
		p.AddCoupling(i, (i+1)%8, -2)
	}
	rng := rand.New(rand.NewSource(2))
	sa := SimulatedAnnealer{Sweeps: 200}
	hits := 0
	for r := 0; r < 20; r++ {
		s := sa.Anneal(p, rng)
		allDown := true
		for _, v := range s {
			if v != -1 {
				allDown = false
			}
		}
		if allDown {
			hits++
		}
	}
	if hits < 15 {
		t.Fatalf("SA found the ferromagnetic ground state only %d/20 times", hits)
	}
}

// testDevice returns a small noiseless device on Pegasus P2 for fast tests.
func testDevice() *Device {
	g, _ := topology.Pegasus(2)
	d := NewDevice(g)
	d.SigmaH, d.SigmaJ = 0, 0
	return d
}

func smallQUBO() *qubo.QUBO {
	// Minimum -2 at x = (0,1,1).
	q := qubo.New(3)
	q.AddLinear(0, 2)
	q.AddLinear(1, -1)
	q.AddLinear(2, -1)
	q.AddQuad(0, 1, 1)
	q.AddQuad(0, 2, 1)
	return q
}

func TestDeviceSampleFindsOptimum(t *testing.T) {
	d := testDevice()
	q := smallQUBO()
	res, err := d.Sample(q, 50, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 50 || len(res.Energies) != 50 {
		t.Fatalf("result sizes wrong: %d/%d", len(res.Assignments), len(res.Energies))
	}
	best := math.Inf(1)
	for i, x := range res.Assignments {
		if v := q.Value(x); math.Abs(v-res.Energies[i]) > 1e-9 {
			t.Fatal("energy mismatch with assignment")
		} else if v < best {
			best = v
		}
	}
	if best > -2+1e-9 {
		t.Fatalf("noiseless annealer best energy %v, want -2", best)
	}
	if res.PhysicalQubits < 3 {
		t.Fatal("embedding impossibly small")
	}
}

func TestDeviceNoiseDegradesQuality(t *testing.T) {
	q := smallQUBO()
	clean := testDevice()
	noisy := testDevice()
	noisy.SigmaH, noisy.SigmaJ = 0.5, 0.5 // extreme ICE noise
	rc, err := clean.Sample(q, 60, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := noisy.Sample(q, 60, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	optClean, optNoisy := 0, 0
	for i := range rc.Energies {
		if rc.Energies[i] <= -2+1e-9 {
			optClean++
		}
		if rn.Energies[i] <= -2+1e-9 {
			optNoisy++
		}
	}
	if optNoisy >= optClean {
		t.Fatalf("extreme noise did not reduce optimal rate: %d vs %d", optNoisy, optClean)
	}
}

func TestSampleValidation(t *testing.T) {
	d := testDevice()
	q := smallQUBO()
	if _, err := d.Sample(q, 0, 20, 1); err == nil {
		t.Error("accepted 0 reads")
	}
	if _, err := d.Sample(q, 10, 0, 1); err == nil {
		t.Error("accepted 0 annealing time")
	}
}

func TestEmbedOnlyMatchesSampleFootprint(t *testing.T) {
	d := testDevice()
	q := smallQUBO()
	emb, err := d.EmbedOnly(q, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.SampleEmbedded(q, emb, 5, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.PhysicalQubits != emb.PhysicalQubits() {
		t.Fatal("footprint mismatch")
	}
}

func TestChainBreakFractionBounded(t *testing.T) {
	d := testDevice()
	d.SigmaH, d.SigmaJ = 0.3, 0.3
	d.RelativeChainStrength = 0.2 // weak chains break often
	q := qubo.New(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			q.AddQuad(i, j, float64((i+j)%3)-1)
		}
	}
	res, err := d.Sample(q, 30, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChainBreakFraction < 0 || res.ChainBreakFraction > 1 {
		t.Fatalf("chain break fraction %v outside [0,1]", res.ChainBreakFraction)
	}
}

func TestTimingModel(t *testing.T) {
	m := DefaultTimingModel()
	total := m.QPUAccessMicros(1000, 20)
	// 15 ms programming + 1000 × 160 µs = 175 ms.
	if math.Abs(total-175000) > 1e-6 {
		t.Fatalf("access time = %v µs", total)
	}
	// Annealing time is a small share of access time (paper's t_s vs
	// t_qpu observation carries over to annealers).
	if 1000*20 > total/2 {
		t.Fatal("annealing dominates access time; model wrong")
	}
}

func TestAnnealTimeMapsToSweeps(t *testing.T) {
	d := testDevice()
	q := smallQUBO()
	// Longer annealing time should never hurt on a noiseless device;
	// just verify both run and record their time.
	for _, at := range []float64{20, 100} {
		res, err := d.Sample(q, 10, at, 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.AnnealTimeMicros != at {
			t.Fatal("annealing time not recorded")
		}
	}
}
