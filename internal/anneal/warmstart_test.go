package anneal

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// warmTestProblem builds a moderately frustrated Ising instance with a
// rough landscape so that short cold anneals land above good incumbents.
func warmTestProblem(seed int64) *IsingProblem {
	rng := rand.New(rand.NewSource(seed))
	p := NewIsingProblem(40)
	for i := range p.H {
		p.H[i] = rng.NormFloat64()
	}
	for i := 0; i < p.N(); i++ {
		for j := i + 1; j < p.N(); j++ {
			if rng.Float64() < 0.15 {
				p.AddCoupling(i, j, rng.NormFloat64())
			}
		}
	}
	return p
}

// incumbentFor produces a decent (not optimal) configuration the way the
// hybrid orchestrator does: a cheap classical pass, here a short anneal.
func incumbentFor(p *IsingProblem, seed int64) []int8 {
	s, _ := SimulatedAnnealer{Sweeps: 24}.AnnealContext(context.Background(), p, rand.New(rand.NewSource(seed)))
	return s
}

// minSweepsToReach scans sweep budgets and returns the smallest budget for
// which the (deterministically seeded) annealer ends at or below target.
func minSweepsToReach(p *IsingProblem, target float64, seed int64, init []int8) int {
	for _, sweeps := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		sa := SimulatedAnnealer{Sweeps: sweeps}
		if init != nil {
			sa.InitialState = init
			sa.BetaMin = 2 // reverse-annealing style: do not scramble the start
		}
		s, err := sa.AnnealContext(context.Background(), p, rand.New(rand.NewSource(seed)))
		if err != nil {
			panic(err)
		}
		if p.Energy(s) <= target+1e-9 {
			return sweeps
		}
	}
	return math.MaxInt
}

func TestSAWarmStartReachesIncumbentInFewerSweeps(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p := warmTestProblem(seed)
		inc := incumbentFor(p, seed+100)
		target := p.Energy(inc)
		cold := minSweepsToReach(p, target, seed+200, nil)
		warm := minSweepsToReach(p, target, seed+200, inc)
		if warm > cold {
			t.Errorf("seed %d: warm start needed %d sweeps, cold start %d", seed, warm, cold)
		}
		if warm > 16 {
			t.Errorf("seed %d: warm start needed %d sweeps to match its own incumbent", seed, warm)
		}
		if cold <= 1 {
			t.Errorf("seed %d: incumbent too weak to discriminate (cold start matched it in %d sweeps)", seed, cold)
		}
	}
}

func TestPIMCWarmStartBeatsColdAtSmallBudget(t *testing.T) {
	for _, seed := range []int64{7, 8, 9} {
		p := warmTestProblem(seed)
		inc := incumbentFor(p, seed+70)
		target := p.Energy(inc)
		cold := PathIntegralAnnealer{Slices: 4, Sweeps: 4}
		warm := PathIntegralAnnealer{Slices: 4, Sweeps: 4, InitialState: inc}
		sc, err := cold.AnnealContext(context.Background(), p, rand.New(rand.NewSource(seed+9)))
		if err != nil {
			t.Fatal(err)
		}
		sw, err := warm.AnnealContext(context.Background(), p, rand.New(rand.NewSource(seed+9)))
		if err != nil {
			t.Fatal(err)
		}
		eCold, eWarm := p.Energy(sc), p.Energy(sw)
		// Four sweeps from random spins cannot reach what four sweeps of
		// refinement from a good incumbent reach.
		if eWarm >= eCold {
			t.Errorf("seed %d: warm PIMC %v not better than cold %v (incumbent %v)", seed, eWarm, eCold, target)
		}
	}
}

func TestDeviceWarmStartRefines(t *testing.T) {
	d := testDevice()
	q := smallQUBO()
	// Warm-start from the known optimum x = (0,1,1): with a noiseless
	// device and a cold (BetaMin-raised) schedule every read should stay
	// at (or re-find) the optimum even at a tiny sweep budget.
	warm := *d
	warm.InitialState = []bool{false, true, true}
	res, err := warm.Sample(q, 8, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for _, e := range res.Energies {
		if e < best {
			best = e
		}
	}
	if best > -2+1e-9 {
		t.Errorf("warm-started device best energy %v, want -2", best)
	}
}

func TestDeviceWarmStartWithGaugeAveraging(t *testing.T) {
	d := testDevice()
	d.GaugeAveraging = true
	d.InitialState = []bool{false, true, true}
	q := smallQUBO()
	res, err := d.Sample(q, 8, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for _, e := range res.Energies {
		if e < best {
			best = e
		}
	}
	if best > -2+1e-9 {
		t.Errorf("gauge-averaged warm start best energy %v, want -2", best)
	}
}

func TestDeviceWarmStartRejectsWrongLength(t *testing.T) {
	d := testDevice()
	d.InitialState = []bool{true}
	if _, err := d.Sample(smallQUBO(), 2, 2, 1); err == nil {
		t.Fatal("wrong-length warm start accepted")
	}
}
