// Co-design study: the paper's §6.2 question — which physical QPU
// improvements help join ordering most? For a fixed JO instance this
// example transpiles the QAOA circuit onto IBM-, Rigetti- and IonQ-style
// topologies, sweeps the extended-connectivity density, and compares
// native against unrestricted gate sets and the two routing heuristics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"quantumjoin/internal/core"
	"quantumjoin/internal/qaoa"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/stats"
	"quantumjoin/internal/topology"
	"quantumjoin/internal/transpile"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	q, err := querygen.Generate(querygen.Config{
		Relations: 4, Graph: querygen.Cycle, IntegerLog: true,
		MinLogCard: 1, MaxLogCard: 3, MinLogSel: 1, MaxLogSel: 2,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := core.Encode(q, core.Options{
		Thresholds: core.DefaultThresholds(q, 2),
		Omega:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := qaoa.NewParams(1)
	params.Gammas[0] = 0.35
	params.Betas[0] = 0.6
	logical := qaoa.BuildCircuit(enc.QUBO, params)
	n := enc.NumQubits()
	fmt.Printf("instance: 4-relation cycle query, %d logical qubits, %d quadratic terms\n\n",
		n, enc.QUBO.NumQuadTerms())

	median := func(dev *topology.Graph, set transpile.GateSet, router transpile.Router) float64 {
		var ds []float64
		for seed := int64(0); seed < 7; seed++ {
			tr, err := transpile.Transpile(logical, dev, transpile.Options{
				GateSet: set, Router: router, Seed: seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			ds = append(ds, float64(tr.Circuit.Depth()))
		}
		return stats.Quantile(ds, 0.5)
	}

	fmt.Println("1. Density extrapolation (IBM heavy-hex, native gates, lookahead router):")
	ibm := topology.ExtendIBM(n)
	for _, d := range []float64{0, 0.05, 0.1, 0.25, 0.5, 1} {
		dev := topology.Densify(ibm, d, rand.New(rand.NewSource(int64(d*1000))))
		fmt.Printf("   density %.2f: median depth %5.0f (%d couplers)\n",
			d, median(dev, transpile.IBMNative, transpile.RouterLookahead), dev.NumEdges())
	}

	fmt.Println("\n2. Platform comparison at baseline density (native gates):")
	rig := topology.ExtendRigetti(n)
	ion := topology.Complete("ionq-mesh", n)
	fmt.Printf("   IBM heavy-hex (%3d qubits): %5.0f\n", ibm.N(), median(ibm, transpile.IBMNative, transpile.RouterLookahead))
	fmt.Printf("   Rigetti Aspen (%3d qubits): %5.0f\n", rig.N(), median(rig, transpile.RigettiNative, transpile.RouterLookahead))
	fmt.Printf("   IonQ mesh     (%3d qubits): %5.0f\n", ion.N(), median(ion, transpile.IonQNative, transpile.RouterLookahead))

	fmt.Println("\n3. Native vs unrestricted gate sets (lookahead router):")
	for _, pl := range []struct {
		name   string
		dev    *topology.Graph
		native transpile.GateSet
	}{
		{"IBM", ibm, transpile.IBMNative},
		{"Rigetti", rig, transpile.RigettiNative},
		{"IonQ", ion, transpile.IonQNative},
	} {
		nd := median(pl.dev, pl.native, transpile.RouterLookahead)
		ud := median(pl.dev, transpile.Unrestricted, transpile.RouterLookahead)
		fmt.Printf("   %-8s native %5.0f vs unrestricted %5.0f (overhead %.2fx)\n",
			pl.name, nd, ud, nd/ud)
	}

	fmt.Println("\n4. Routing heuristics (IBM, native gates):")
	lb := median(ibm, transpile.IBMNative, transpile.RouterLookahead)
	bb := median(ibm, transpile.IBMNative, transpile.RouterBasic)
	fmt.Printf("   lookahead (qiskit-like) %5.0f vs basic (tket-like stand-in) %5.0f (%.2fx)\n",
		lb, bb, bb/lb)

	// 5. Beyond the paper: targeted instead of semi-stochastic density
	// extension (the paper's §8 future-work direction). Extract the
	// workload's interaction demands under a fixed layout and add exactly
	// the couplers that serve them.
	fmt.Println("\n5. Targeted vs random density extension (density 0.05, IBM native):")
	layout := make([]int, n)
	for i := range layout {
		layout[i] = i
	}
	var pairs [][2]int
	for _, g := range logical.Gates {
		if g.Kind.IsTwoQubit() {
			pairs = append(pairs, [2]int{g.Q0, g.Q1})
		}
	}
	demands := topology.WorkloadDemands(pairs, layout)
	randomDev := topology.Densify(ibm, 0.05, rand.New(rand.NewSource(99)))
	targetedDev := topology.DensifyTargeted(ibm, 0.05, demands, rand.New(rand.NewSource(99)))
	fixed := transpile.Options{GateSet: transpile.IBMNative, Router: transpile.RouterLookahead, Layout: layout}
	depthOn := func(dev *topology.Graph) int {
		tr, err := transpile.Transpile(logical, dev, fixed)
		if err != nil {
			log.Fatal(err)
		}
		return tr.Circuit.Depth()
	}
	rd, td := depthOn(randomDev), depthOn(targetedDev)
	fmt.Printf("   random couplers:   depth %d\n", rd)
	fmt.Printf("   targeted couplers: depth %d\n", td)
	if td >= rd {
		fmt.Println("   → a negative result worth knowing: for dense QAOA workloads the")
		fmt.Println("     demand-greedy edges serve single pairs, while proximity-random")
		fmt.Println("     chords improve the whole routing fabric; targeted insertion only")
		fmt.Println("     wins when a few long-range interactions dominate the workload.")
	}
}
