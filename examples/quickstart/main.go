// Quickstart: encode a three-relation join ordering problem as a QUBO and
// solve it on the simulated quantum annealer, comparing against the
// classical optimum. This is the paper's running example (Example 3.1–3.3:
// relations R, S, T with a predicate between R and S).
package main

import (
	"fmt"
	"log"

	"quantumjoin"
)

func main() {
	q := quantumjoin.Query{
		Relations: []quantumjoin.Relation{
			{Name: "R", Card: 100},
			{Name: "S", Card: 100},
			{Name: "T", Card: 100},
		},
		Predicates: []quantumjoin.Predicate{
			{R1: 0, R2: 1, Sel: 0.1}, // R ⋈ S with selectivity 0.1
		},
	}

	// The classical ground truth: (R ⋈ S) ⋈ T with cost 101000.
	optOrder, optCost, err := quantumjoin.OptimalJoinOrder(&q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classical optimum: %s (cost %.0f)\n", q.Tree(optOrder), optCost)

	// Encode as a QUBO (paper §3): thresholds approximate intermediate
	// cardinalities; each binary variable needs one qubit.
	enc, err := quantumjoin.Encode(&q, quantumjoin.EncodeOptions{
		Thresholds: []float64{1000},
		Omega:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QUBO: %d logical qubits, %d quadratic terms\n",
		enc.NumQubits(), enc.QUBO.NumQuadTerms())

	// Solve on a simulated D-Wave-style annealer.
	res, err := quantumjoin.SolveAnnealing(enc, quantumjoin.AnnealingOptions{
		Reads: 500,
		Seed:  7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("annealer best: %s (cost %.0f), %d physical qubits\n",
		q.Tree(res.Best.Order), res.Best.Cost, res.PhysicalQubits)
	fmt.Printf("valid samples: %.1f%%, optimal samples: %.1f%%\n",
		100*res.ValidFraction, 100*res.OptimalFraction)

	if res.Best.Cost <= optCost {
		fmt.Println("→ quantum annealing recovered the optimal join order")
	}
}
