// SQL pipeline: the paper's Figure 1 architecture end to end — a SQL
// query is parsed, cardinalities and selectivities are estimated from a
// statistics catalog (System-R rules), the join ordering problem is
// encoded as a QUBO, and the simulated quantum annealer acts as the local
// query optimisation co-processor.
package main

import (
	"fmt"
	"log"
	"strings"

	"quantumjoin"
)

const catalogJSON = `{
  "tables": [
    {"name": "orders",    "cardinality": 1500000,
     "columns": [{"name": "o_custkey", "distinct": 100000},
                 {"name": "o_status",  "distinct": 3}]},
    {"name": "customers", "cardinality": 100000,
     "columns": [{"name": "c_custkey", "distinct": 100000},
                 {"name": "c_nation",  "distinct": 25}]},
    {"name": "lineitem",  "cardinality": 6000000,
     "columns": [{"name": "l_orderkey", "distinct": 1500000}]}
  ]
}`

const query = `
SELECT o.o_custkey
FROM   orders o, customers c, lineitem l
WHERE  o.o_custkey  = c.c_custkey
  AND  l.l_orderkey = o.o_custkey
  AND  c.c_nation   = 'DE'
  AND  o.o_status   = 'shipped';`

func main() {
	cat, err := quantumjoin.ReadSQLCatalog(strings.NewReader(catalogJSON))
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := quantumjoin.ParseSQL(query, cat)
	if err != nil {
		log.Fatal(err)
	}
	q := parsed.Query
	fmt.Println("parsed instance (after filter push-down):")
	for i, rel := range q.Relations {
		fmt.Printf("  %-4s (%s): |%s| ≈ %.0f\n", rel.Name, parsed.Tables[i], rel.Name, rel.Card)
	}
	for _, p := range q.Predicates {
		fmt.Printf("  %s ⋈ %s: selectivity %.3g\n",
			q.Relations[p.R1].Name, q.Relations[p.R2].Name, p.Sel)
	}

	optOrder, optCost, err := quantumjoin.OptimalJoinOrder(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclassical optimum:  %s (C_out %.4g)\n", q.Tree(optOrder), optCost)

	enc, err := quantumjoin.Encode(q, quantumjoin.EncodeOptions{
		Thresholds: quantumjoin.DefaultThresholds(q, 4),
		Omega:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QUBO encoding:      %d logical qubits\n", enc.NumQubits())

	milp, err := quantumjoin.SolveMILP(enc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classical MILP:     %s (C_out %.4g)\n", q.Tree(milp.Order), milp.Cost)

	res, err := quantumjoin.SolveAnnealing(enc, quantumjoin.AnnealingOptions{
		Reads: 600, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quantum annealer:   %s (C_out %.4g, %d physical qubits, %.1f%% valid reads)\n",
		q.Tree(res.Best.Order), res.Best.Cost, res.PhysicalQubits, 100*res.ValidFraction)
}
