// Annealing study: how solution quality degrades with problem size on the
// simulated quantum annealer — the mechanism behind the paper's Table 3.
// For chain queries of 3..5 relations it reports embedding footprint,
// chain lengths, chain-break rates, and valid/optimal sample fractions
// across annealing times.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"quantumjoin/internal/anneal"
	"quantumjoin/internal/core"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/topology"
)

func main() {
	g, _ := topology.Pegasus(6)
	dev := anneal.NewDevice(g)
	fmt.Printf("device: %s-like annealer, %d qubits, %d couplers\n\n",
		g.Name, g.N(), g.NumEdges())
	fmt.Printf("%-9s %8s %8s %9s %8s %11s %8s %8s\n",
		"relations", "logical", "physical", "max-chain", "Δt [µs]", "chain-break", "valid", "optimal")

	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{3, 4, 5} {
		q, err := querygen.Generate(querygen.Config{
			Relations: n, Graph: querygen.Chain, IntegerLog: true,
			MinLogCard: 1, MaxLogCard: 3, MinLogSel: 1, MaxLogSel: 2,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		enc, err := core.Encode(q, core.Options{
			Thresholds: core.DefaultThresholds(q, 1),
			Omega:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		emb, err := dev.EmbedOnly(enc.QUBO, int64(n))
		if err != nil {
			fmt.Printf("%-9d %8d %8s — embedding failed: the feasibility frontier\n",
				n, enc.NumQubits(), "-")
			continue
		}
		for _, at := range []float64{20, 60, 100} {
			out, err := dev.SampleEmbedded(enc.QUBO, emb, 400, at, int64(n)*37)
			if err != nil {
				log.Fatal(err)
			}
			valid, optimal := 0, 0
			for _, x := range out.Assignments {
				d := enc.Decode(x)
				if !d.Valid {
					continue
				}
				valid++
				if ok, err := enc.IsOptimal(d); err == nil && ok {
					optimal++
				}
			}
			fmt.Printf("%-9d %8d %8d %9d %8.0f %10.1f%% %7.1f%% %7.1f%%\n",
				n, enc.NumQubits(), emb.PhysicalQubits(), emb.MaxChainLength(), at,
				100*out.ChainBreakFraction,
				100*float64(valid)/400, 100*float64(optimal)/400)
		}
	}

	tm := anneal.DefaultTimingModel()
	fmt.Printf("\nQPU access time for 1000 reads at 20 µs: %.0f ms (programming + readout dominate)\n",
		tm.QPUAccessMicros(1000, 20)/1000)
}
