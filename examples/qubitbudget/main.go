// Qubit budget planning: the paper's §6.1 question — how large a join
// ordering problem fits a future QPU of a given size? Using the
// Theorem 5.3 upper bound this example tabulates the largest solvable
// relation count per qubit budget, threshold count and discretisation
// precision, reproducing headline claims like "a QPU offering 1000
// logical qubits can solve problems with up to 13 relations".
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"quantumjoin/internal/core"
	"quantumjoin/internal/querygen"
)

func main() {
	rng := rand.New(rand.NewSource(2))
	// Precompute bounds for cycle queries (the most expensive graph type)
	// up to 70 relations.
	type key struct{ r, d int }
	bounds := map[key][]int{} // bounds[k][n] = qubit bound for n relations
	maxN := 70
	for n := 3; n <= maxN; n++ {
		q, err := querygen.Generate(querygen.Config{
			Relations: n, Graph: querygen.Cycle, IntegerLog: true,
			MinLogCard: 1, MaxLogCard: 5, MinLogSel: 1, MaxLogSel: 2,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range []int{1, 2, 5, 10} {
			for _, d := range []int{0, 2, 4} {
				k := key{r, d}
				if bounds[k] == nil {
					bounds[k] = make([]int, maxN+1)
				}
				bounds[k][n] = core.UpperBound(q, r, math.Pow(10, -float64(d))).Total()
			}
		}
	}

	maxRelations := func(budget, r, d int) int {
		best := 0
		for n := 3; n <= maxN; n++ {
			if b := bounds[key{r, d}][n]; b > 0 && b <= budget && n > best {
				best = n
			}
		}
		return best
	}

	fmt.Println("largest join ordering problem (relations, cycle queries) per logical-qubit budget")
	fmt.Printf("%-8s %-22s %-22s %-22s\n", "", "1 threshold", "5 thresholds", "10 thresholds")
	fmt.Printf("%-8s %6s %6s %6s   %6s %6s %6s   %6s %6s %6s\n",
		"budget", "ω=1", "ω=1e-2", "ω=1e-4", "ω=1", "ω=1e-2", "ω=1e-4", "ω=1", "ω=1e-2", "ω=1e-4")
	for _, budget := range []int{27, 127, 433, 1000, 5000, 20000} {
		fmt.Printf("%-8d", budget)
		for _, r := range []int{1, 5, 10} {
			for _, d := range []int{0, 2, 4} {
				fmt.Printf(" %6d", maxRelations(budget, r, d))
			}
			fmt.Printf("  ")
		}
		fmt.Println()
	}

	fmt.Println("\ncontext: 27 = IBM Falcon (Auckland), 127 = IBM Eagle (Washington),")
	fmt.Println("1000 = vendor roadmaps' near-term target, 20000 ≈ the paper's estimate")
	fmt.Println("for classical-MILP-scale problems (60 relations)")
}
