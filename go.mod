module quantumjoin

go 1.22
