// Package quantumjoin solves database join ordering problems on simulated
// quantum hardware, reproducing "Ready to Leap (by Co-Design)? Join Order
// Optimisation on Quantum Hardware" (Schönberger, Scherzinger, Mauerer):
// the paper's QUBO formulation of join ordering, a gate-based QPU stack
// (QAOA + transpilation onto IBM/Rigetti/IonQ topologies with noise), a
// quantum annealer stack (Pegasus topology, minor embedding, analog
// noise), classical baselines, the formal qubit bounds, and the full
// experiment suite behind every table and figure of the paper.
//
// This package is the stable public facade; the implementation lives in
// internal/ subpackages (see DESIGN.md for the map).
//
// Basic usage:
//
//	q := quantumjoin.Query{
//		Relations: []quantumjoin.Relation{{Name: "R", Card: 100}, ...},
//		Predicates: []quantumjoin.Predicate{{R1: 0, R2: 1, Sel: 0.1}},
//	}
//	enc, err := quantumjoin.Encode(&q, quantumjoin.EncodeOptions{
//		Thresholds: quantumjoin.DefaultThresholds(&q, 3),
//	})
//	res, err := quantumjoin.SolveAnnealing(enc, quantumjoin.AnnealingOptions{})
package quantumjoin

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"quantumjoin/internal/anneal"
	"quantumjoin/internal/circuit"
	"quantumjoin/internal/classical"
	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
	"quantumjoin/internal/noise"
	"quantumjoin/internal/qaoa"
	"quantumjoin/internal/qsim"
	"quantumjoin/internal/qubo"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/sqlfront"
	"quantumjoin/internal/topology"
	"quantumjoin/internal/transpile"
	"quantumjoin/internal/workloads"
)

// Re-exported domain types.
type (
	// Query is a join ordering problem instance.
	Query = join.Query
	// Relation is a base relation with a cardinality.
	Relation = join.Relation
	// Predicate is a binary join predicate with a selectivity.
	Predicate = join.Predicate
	// Order is a left-deep join order (permutation of relation indices).
	Order = join.Order
	// Encoding is a QUBO encoding of a join ordering problem.
	Encoding = core.Encoding
	// EncodeOptions configure the MILP→BILP→QUBO pipeline.
	EncodeOptions = core.Options
	// Decoded is a post-processed sample (§3.5 of the paper).
	Decoded = core.Decoded
	// GraphType selects a query graph shape for the generator.
	GraphType = querygen.GraphType
	// GeneratorConfig configures the Steinbrunn-style query generator.
	GeneratorConfig = querygen.Config
)

// Query graph shapes.
const (
	Chain  = querygen.Chain
	Star   = querygen.Star
	Cycle  = querygen.Cycle
	Clique = querygen.Clique
)

// GenerateQuery draws a random join ordering instance.
func GenerateQuery(cfg GeneratorConfig, seed int64) (*Query, error) {
	return querygen.Generate(cfg, rand.New(rand.NewSource(seed)))
}

// ReadCatalog parses a query instance from its JSON catalog form (see
// Query.WriteCatalog for the schema).
func ReadCatalog(r io.Reader) (*Query, error) {
	return join.ReadCatalog(r)
}

// SQLCatalog holds table/column statistics for ParseSQL.
type SQLCatalog = sqlfront.Catalog

// ParsedSQL is a SQL statement turned into an optimisable instance.
type ParsedSQL = sqlfront.ParsedQuery

// ReadSQLCatalog parses a statistics catalog (tables, cardinalities,
// column distinct counts) from JSON.
func ReadSQLCatalog(r io.Reader) (*SQLCatalog, error) {
	return sqlfront.ReadCatalog(r)
}

// ParseSQL turns a SELECT-FROM-WHERE statement into a join ordering
// instance, estimating cardinalities and selectivities against the
// catalog with the classic System-R rules. This realises the paper's
// Figure 1 pipeline: parser → (quantum) join order optimiser.
func ParseSQL(sql string, cat *SQLCatalog) (*ParsedSQL, error) {
	return sqlfront.Parse(sql, cat)
}

// WorkloadNames lists the built-in JOB-style benchmark queries.
func WorkloadNames() []string {
	var names []string
	for _, q := range workloads.Queries() {
		names = append(names, q.Name)
	}
	return names
}

// LoadWorkloadQuery parses one of the built-in JOB-style benchmark
// queries (see WorkloadNames) into a join ordering instance.
func LoadWorkloadQuery(name string) (*Query, error) {
	return workloads.Load(name)
}

// Encode builds the QUBO encoding of a query (paper §3). The number of
// binary variables equals the number of logical qubits required.
func Encode(q *Query, opts EncodeOptions) (*Encoding, error) {
	return core.Encode(q, opts)
}

// DefaultThresholds spreads r cardinality thresholds geometrically over
// the query's intermediate-result range.
func DefaultThresholds(q *Query, r int) []float64 {
	return core.DefaultThresholds(q, r)
}

// QubitUpperBound evaluates the Theorem 5.3 bound on logical qubits for a
// query with r thresholds at discretisation precision omega.
func QubitUpperBound(q *Query, r int, omega float64) int {
	return core.UpperBound(q, r, omega).Total()
}

// OptimalJoinOrder computes the exact optimum classically (DP over
// subsets, left-deep trees with cross products) — the ground truth the
// quantum results are judged against.
func OptimalJoinOrder(q *Query) (Order, float64, error) {
	res, err := classical.Optimal(q)
	if err != nil {
		return nil, 0, err
	}
	return res.Order, res.Cost, nil
}

// GreedyJoinOrder returns the min-intermediate-cardinality greedy order.
func GreedyJoinOrder(q *Query) (Order, float64) {
	res := classical.Greedy(q)
	return res.Order, res.Cost
}

// SolveMILP solves the encoding's join-ordering MILP model exactly with
// the built-in LP-relaxation branch-and-bound solver — the classical
// Trummer/Koch pathway the quantum formulation derives from. The result
// is optimal with respect to the threshold-approximated cost.
func SolveMILP(enc *Encoding) (Decoded, error) {
	return enc.SolveMILP()
}

// SolveMILPContext is SolveMILP with cancellation: the branch-and-bound
// search checks the context at every node, so request deadlines interrupt
// deep searches instead of waiting for the full proof of optimality.
func SolveMILPContext(ctx context.Context, enc *Encoding) (Decoded, error) {
	return enc.SolveMILPContext(ctx)
}

// Result is the outcome of a quantum optimisation run.
type Result struct {
	// Best is the best valid decoded solution.
	Best Decoded
	// ValidFraction is the share of samples decoding to valid join trees.
	ValidFraction float64
	// OptimalFraction is the share decoding to cost-optimal join trees.
	OptimalFraction float64
	// Samples is the number of samples drawn.
	Samples int
	// PhysicalQubits is the annealer embedding footprint (0 for QAOA).
	PhysicalQubits int
}

func summarize(enc *Encoding, assignments [][]bool) (Result, error) {
	res := Result{Samples: len(assignments)}
	valid, optimal := 0, 0
	haveBest := false
	for _, x := range assignments {
		d := enc.Decode(x)
		if !d.Valid {
			continue
		}
		valid++
		ok, err := enc.IsOptimal(d)
		if err != nil {
			return res, err
		}
		if ok {
			optimal++
		}
		if !haveBest || d.Cost < res.Best.Cost {
			res.Best = d
			haveBest = true
		}
	}
	if len(assignments) > 0 {
		res.ValidFraction = float64(valid) / float64(len(assignments))
		res.OptimalFraction = float64(optimal) / float64(len(assignments))
	}
	if !haveBest {
		return res, fmt.Errorf("quantumjoin: no valid solution among %d samples", len(assignments))
	}
	return res, nil
}

// AnnealingOptions configure SolveAnnealing.
type AnnealingOptions struct {
	// Reads is the number of annealing reads (default 1000).
	Reads int
	// AnnealTimeMicros is the annealing time per read (default 20 µs).
	AnnealTimeMicros float64
	// PegasusM sets the hardware graph size (default 6; 16 = the full
	// Advantage system, expensive to construct).
	PegasusM int
	// Noiseless disables analog control noise.
	Noiseless bool
	// Seed drives embedding and sampling.
	Seed int64
}

// SolveAnnealing samples the encoding on a simulated D-Wave-style
// annealer and post-processes the reads.
func SolveAnnealing(enc *Encoding, opts AnnealingOptions) (Result, error) {
	return SolveAnnealingContext(context.Background(), enc, opts)
}

// SolveAnnealingContext is SolveAnnealing with cancellation: long sampling
// runs honour the context's deadline, checking it between (and within)
// reads, and return the context error wrapped with partial-progress
// information.
func SolveAnnealingContext(ctx context.Context, enc *Encoding, opts AnnealingOptions) (Result, error) {
	if opts.Reads == 0 {
		opts.Reads = 1000
	}
	if opts.AnnealTimeMicros == 0 {
		opts.AnnealTimeMicros = 20
	}
	if opts.PegasusM == 0 {
		opts.PegasusM = 6
	}
	g, _ := topology.Pegasus(opts.PegasusM)
	dev := anneal.NewDevice(g)
	if opts.Noiseless {
		dev.SigmaH, dev.SigmaJ = 0, 0
	}
	out, err := dev.SampleContext(ctx, enc.QUBO, opts.Reads, opts.AnnealTimeMicros, opts.Seed)
	if err != nil {
		return Result{}, err
	}
	res, err := summarize(enc, out.Assignments)
	res.PhysicalQubits = out.PhysicalQubits
	return res, err
}

// TabuOptions configure SolveTabu.
type TabuOptions struct {
	// Tenure is the tabu tenure (default n/4 + 1).
	Tenure int
	// MaxIters bounds flips per restart (default 64·n).
	MaxIters int
	// Restarts is the number of random restarts (default 4).
	Restarts int
	// Seed drives the restarts.
	Seed int64
}

// SolveTabu runs the classical multistart tabu-search heuristic on the
// encoding — the reference heuristic commonly paired with annealers — and
// post-processes the single best assignment. The search honours the
// context's deadline.
func SolveTabu(ctx context.Context, enc *Encoding, opts TabuOptions) (Result, error) {
	ts := qubo.TabuSearch{Tenure: opts.Tenure, MaxIters: opts.MaxIters, Restarts: opts.Restarts}
	sol, err := ts.SolveContext(ctx, enc.QUBO, rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return Result{}, err
	}
	return summarize(enc, [][]bool{sol.Assignment})
}

// QAOAOptions configure SolveQAOA.
type QAOAOptions struct {
	// Layers is the QAOA depth p (default 1, as in the paper).
	Layers int
	// Iterations is the classical optimiser's iteration count (default 20).
	Iterations int
	// Shots is the number of measurement samples (default 1024).
	Shots int
	// Noisy applies the IBM Q Auckland noise model after transpiling onto
	// the Falcon topology.
	Noisy bool
	// Seed drives sampling.
	Seed int64
}

// SolveQAOA runs the hybrid QAOA loop on the statevector simulator
// (bounded by the simulator's qubit cap) and post-processes the shots.
func SolveQAOA(enc *Encoding, opts QAOAOptions) (Result, error) {
	return SolveQAOAContext(context.Background(), enc, opts)
}

// SolveQAOAContext is SolveQAOA with cancellation: the variational loop
// checks the context between optimiser iterations (and within statevector
// evolutions), returning the context error once the deadline passes.
func SolveQAOAContext(ctx context.Context, enc *Encoding, opts QAOAOptions) (Result, error) {
	if opts.Layers == 0 {
		opts.Layers = 1
	}
	if opts.Iterations == 0 {
		opts.Iterations = 20
	}
	if opts.Shots == 0 {
		opts.Shots = 1024
	}
	var cal *noise.Calibration
	var hw *transpile.Result
	if opts.Noisy {
		c := noise.Auckland()
		cal = &c
		params := qaoa.NewParams(opts.Layers)
		for i := range params.Gammas {
			params.Gammas[i] = 0.35
			params.Betas[i] = 0.6
		}
		logical := qaoa.BuildCircuit(enc.QUBO, params)
		dev := topology.Falcon27()
		if enc.QUBO.N() > dev.N() {
			dev = topology.ExtendIBM(enc.QUBO.N())
		}
		tr, err := transpile.Transpile(logical, dev, transpile.Options{
			GateSet: transpile.IBMNative,
			Router:  transpile.RouterLookahead,
			Seed:    opts.Seed,
		})
		if err != nil {
			return Result{}, err
		}
		hw = tr
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var hwCircuit *circuit.Circuit
	if hw != nil {
		hwCircuit = hw.Circuit
	}
	out, err := qaoa.RunContext(ctx, enc.QUBO, opts.Layers, qaoa.AQGD{Iterations: opts.Iterations}, opts.Shots, cal, hwCircuit, rng)
	if err != nil {
		return Result{}, err
	}
	assignments := make([][]bool, len(out.Samples))
	for i, b := range out.Samples {
		assignments[i] = qsim.BitsOf(b, enc.QUBO.N())
	}
	return summarize(enc, assignments)
}
