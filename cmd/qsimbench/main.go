// Command qsimbench measures the simulator stack's fast path: strided
// versus reference statevector kernels, serial versus worker-pool
// execution, fused versus gate-by-gate diagonal layers, and the
// cost-table versus per-basis-state QAOA expectation. Results go to a
// JSON file (default BENCH_qsim.json) with the host's CPU budget
// recorded, since kernel-level parallel speedup is only visible when
// GOMAXPROCS > 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"quantumjoin/internal/circuit"
	"quantumjoin/internal/qaoa"
	"quantumjoin/internal/qsim"
	"quantumjoin/internal/qubo"
)

// Measurement is one benchmark case.
type Measurement struct {
	Name    string  `json:"name"`
	Qubits  int     `json:"qubits"`
	Workers int     `json:"workers"` // 0 = GOMAXPROCS
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Report is the emitted JSON document.
type Report struct {
	GoMaxProcs   int           `json:"go_max_procs"`
	NumCPU       int           `json:"num_cpu"`
	GoVersion    string        `json:"go_version"`
	Measurements []Measurement `json:"measurements"`
}

// timeIt runs fn repeatedly for at least minDuration and returns ns/op.
func timeIt(minDuration time.Duration, fn func()) (int, float64) {
	fn() // warm up
	iters := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		fn()
		iters++
	}
	return iters, float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func randomize(s *qsim.State, rng *rand.Rand, n int) {
	// Scramble via a cheap circuit so amplitudes are dense; exact values
	// don't matter for timing.
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.G1(circuit.H, q, 0))
		c.Append(circuit.G1(circuit.RY, q, rng.Float64()))
	}
	if err := s.Run(c); err != nil {
		panic(err)
	}
}

func diagLayer(n int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.G1(circuit.RZ, q, 0.3+float64(q)*0.01))
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.G2(circuit.RZZ, q, (q+1)%n, 0.7+float64(q)*0.01))
	}
	return c
}

func denseQUBO(rng *rand.Rand, n int) *qubo.QUBO {
	q := qubo.New(n)
	for i := 0; i < n; i++ {
		q.AddLinear(i, rng.NormFloat64())
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				q.AddQuad(i, j, rng.NormFloat64())
			}
		}
	}
	return q
}

func main() {
	out := flag.String("o", "BENCH_qsim.json", "output JSON path")
	budget := flag.Duration("t", 2*time.Second, "minimum measurement time per case")
	maxQubits := flag.Int("max-qubits", 24, "largest statevector size (2^n amplitudes)")
	flag.Parse()

	rep := &Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	add := func(name string, qubits, workers, iters int, nsPerOp float64) {
		rep.Measurements = append(rep.Measurements, Measurement{
			Name: name, Qubits: qubits, Workers: workers, Iters: iters, NsPerOp: nsPerOp,
		})
		fmt.Printf("%-28s n=%-3d workers=%-2d %12.0f ns/op  (%d iters)\n", name, qubits, workers, nsPerOp, iters)
	}

	sizes := []int{16, 20, 24}
	workerSettings := []int{1, 0} // serial, then full GOMAXPROCS fan-out
	for _, n := range sizes {
		if n > *maxQubits {
			continue
		}
		rng := rand.New(rand.NewSource(int64(n)))
		s, err := qsim.NewState(n)
		if err != nil {
			panic(err)
		}
		randomize(s, rng, n)
		layer := diagLayer(n)

		// Reference full-sweep serial kernel: one Hadamard.
		iters, ns := timeIt(*budget, func() {
			if err := s.ApplyGateRef(circuit.G1(circuit.H, 0, 0)); err != nil {
				panic(err)
			}
		})
		add("h/reference", n, 1, iters, ns)

		for _, w := range workerSettings {
			prev := qsim.SetWorkers(w)
			iters, ns := timeIt(*budget, func() {
				if err := s.ApplyGate(circuit.G1(circuit.H, 0, 0)); err != nil {
					panic(err)
				}
			})
			add("h/strided", n, w, iters, ns)

			iters, ns = timeIt(*budget, func() {
				if err := s.ApplyGate(circuit.G2(circuit.CX, 0, n-1, 0)); err != nil {
					panic(err)
				}
			})
			add("cx/strided", n, w, iters, ns)

			iters, ns = timeIt(*budget, func() {
				if err := s.Run(layer); err != nil {
					panic(err)
				}
			})
			add("diag-layer/fused", n, w, iters, ns)
			qsim.SetWorkers(prev)
		}

		// Gate-by-gate diagonal layer through the reference kernels.
		iters, ns = timeIt(*budget, func() {
			for _, g := range layer.Gates {
				if err := s.ApplyGateRef(g); err != nil {
					panic(err)
				}
			}
		})
		add("diag-layer/gate-by-gate", n, 1, iters, ns)
	}

	// QAOA expectation: per-basis-state QUBO evaluation vs the dense cost
	// table, on the post-circuit state of a p=1 QAOA evaluation.
	for _, n := range []int{16, 20} {
		if n > *maxQubits {
			continue
		}
		rng := rand.New(rand.NewSource(int64(n)))
		q := denseQUBO(rng, n)
		params := qaoa.NewParams(1)
		params.Gammas[0] = 0.37
		params.Betas[0] = 0.41
		ex := &qaoa.Executor{QUBO: q}
		s, err := qsim.NewState(n)
		if err != nil {
			panic(err)
		}
		randomize(s, rng, n)

		iters, ns := timeIt(*budget, func() {
			_ = s.ExpectationDiag(func(b uint64) float64 { return q.ValueBits(b) })
		})
		add("qaoa-expectation/valuebits", n, 1, iters, ns)

		table := q.CostTable()
		for _, w := range workerSettings {
			prev := qsim.SetWorkers(w)
			iters, ns = timeIt(*budget, func() {
				_ = s.ExpectationTable(table)
			})
			add("qaoa-expectation/table", n, w, iters, ns)
			qsim.SetWorkers(prev)
		}

		// Full evaluation (circuit + expectation) through the Executor.
		iters, ns = timeIt(*budget, func() {
			if _, err := ex.Expectation(params); err != nil {
				panic(err)
			}
		})
		add("qaoa-eval/table", n, 0, iters, ns)
		ex.Close()
	}

	f, err := os.Create(*out)
	if err != nil {
		panic(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
