// Command qsimbench measures the simulator stack's fast path: strided
// versus reference statevector kernels (at both complex128 and complex64
// precision), serial versus worker-pool execution, fused versus
// gate-by-gate diagonal layers, the cost-table versus per-basis-state QAOA
// expectation, batched versus sequential multi-seed sampling and
// annealing, and the warm (cached, Lean) service optimize path. Results go
// to a JSON file (default BENCH_qsim.json) with the host's CPU budget
// recorded, since kernel-level parallel speedup is only visible when
// GOMAXPROCS > 1.
//
// With -compare BASELINE.json the run additionally prints a new/old ratio
// for every case present in both reports and exits non-zero when any case
// slowed down by more than -tolerance (default 10%) — the CI regression
// gate for the kernel stack.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"quantumjoin/internal/anneal"
	"quantumjoin/internal/circuit"
	"quantumjoin/internal/join"
	"quantumjoin/internal/qaoa"
	"quantumjoin/internal/qsim"
	"quantumjoin/internal/qubo"
	"quantumjoin/internal/service"
)

// Measurement is one benchmark case.
type Measurement struct {
	Name    string  `json:"name"`
	Qubits  int     `json:"qubits"`
	Workers int     `json:"workers"` // 0 = GOMAXPROCS
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Report is the emitted JSON document.
type Report struct {
	GoMaxProcs   int           `json:"go_max_procs"`
	NumCPU       int           `json:"num_cpu"`
	GoVersion    string        `json:"go_version"`
	Measurements []Measurement `json:"measurements"`
}

// timeIt runs fn repeatedly for at least minDuration and returns ns/op.
func timeIt(minDuration time.Duration, fn func()) (int, float64) {
	fn() // warm up
	iters := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		fn()
		iters++
	}
	return iters, float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func randomize(s *qsim.State, rng *rand.Rand, n int) {
	// Scramble via a cheap circuit so amplitudes are dense; exact values
	// don't matter for timing.
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.G1(circuit.H, q, 0))
		c.Append(circuit.G1(circuit.RY, q, rng.Float64()))
	}
	if err := s.Run(c); err != nil {
		panic(err)
	}
}

func diagLayer(n int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.G1(circuit.RZ, q, 0.3+float64(q)*0.01))
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.G2(circuit.RZZ, q, (q+1)%n, 0.7+float64(q)*0.01))
	}
	return c
}

func denseQUBO(rng *rand.Rand, n int) *qubo.QUBO {
	q := qubo.New(n)
	for i := 0; i < n; i++ {
		q.AddLinear(i, rng.NormFloat64())
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				q.AddQuad(i, j, rng.NormFloat64())
			}
		}
	}
	return q
}

// randomIsing builds a sparse random Ising instance for the annealing
// batch cases.
func randomIsing(rng *rand.Rand, n, degree int) *anneal.IsingProblem {
	p := anneal.NewIsingProblem(n)
	for i := 0; i < n; i++ {
		p.H[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		for k := 0; k < degree/2; k++ {
			j := rng.Intn(n)
			if j != i {
				p.AddCoupling(i, j, rng.NormFloat64())
			}
		}
	}
	return p
}

// chainQuery builds an n-relation chain join for the service warm-path
// cases.
func chainQuery(n int, scale float64) *join.Query {
	q := &join.Query{}
	for i := 0; i < n; i++ {
		card := scale * float64(10*(1+i%4))
		q.Relations = append(q.Relations, join.Relation{Name: fmt.Sprintf("R%d", i), Card: card})
	}
	for i := 0; i+1 < n; i++ {
		q.Predicates = append(q.Predicates, join.Predicate{R1: i, R2: i + 1, Sel: 0.1})
	}
	return q
}

// precSuffix distinguishes complex64 measurements; complex128 keeps the
// historical bare names so old baseline reports stay comparable.
func precSuffix(p qsim.Precision) string {
	if p == qsim.Complex64 {
		return "/c64"
	}
	return ""
}

// loadReport reads a previously written benchmark report.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

// compareReports prints a new/old ratio for every case present in both
// reports and returns the number of cases that regressed beyond tol.
func compareReports(baseline, cur *Report, tol float64) int {
	type key struct {
		name            string
		qubits, workers int
	}
	old := make(map[key]Measurement, len(baseline.Measurements))
	for _, m := range baseline.Measurements {
		old[key{m.Name, m.Qubits, m.Workers}] = m
	}
	regressions, shared := 0, 0
	fmt.Printf("\n%-32s %8s %12s %12s %8s\n", "case", "n/w", "old ns/op", "new ns/op", "ratio")
	for _, m := range cur.Measurements {
		o, ok := old[key{m.Name, m.Qubits, m.Workers}]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		shared++
		ratio := m.NsPerOp / o.NsPerOp
		mark := ""
		if ratio > 1+tol {
			regressions++
			mark = "  REGRESSION"
		}
		fmt.Printf("%-32s %5d/%-2d %12.0f %12.0f %7.2fx%s\n",
			m.Name, m.Qubits, m.Workers, o.NsPerOp, m.NsPerOp, ratio, mark)
	}
	fmt.Printf("compared %d shared cases, %d regressions (tolerance %+.0f%%)\n",
		shared, regressions, tol*100)
	return regressions
}

func main() {
	out := flag.String("o", "BENCH_qsim.json", "output JSON path")
	budget := flag.Duration("t", 2*time.Second, "minimum measurement time per case")
	maxQubits := flag.Int("max-qubits", 24, "largest statevector size (2^n amplitudes)")
	precFlag := flag.String("precision", "both", "statevector widths to measure: complex64, complex128, or both")
	baselinePath := flag.String("compare", "", "baseline report; after measuring, print ratios and exit 1 on regression")
	tol := flag.Float64("tolerance", 0.10, "allowed fractional slowdown per case vs the -compare baseline")
	flag.Parse()

	var precisions []qsim.Precision
	if *precFlag == "both" {
		precisions = []qsim.Precision{qsim.Complex128, qsim.Complex64}
	} else {
		p, err := qsim.ParsePrecision(*precFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		precisions = []qsim.Precision{p}
	}

	rep := &Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	add := func(name string, qubits, workers, iters int, nsPerOp float64) {
		rep.Measurements = append(rep.Measurements, Measurement{
			Name: name, Qubits: qubits, Workers: workers, Iters: iters, NsPerOp: nsPerOp,
		})
		fmt.Printf("%-32s n=%-3d workers=%-2d %12.0f ns/op  (%d iters)\n", name, qubits, workers, nsPerOp, iters)
	}

	sizes := []int{16, 20, 24}
	workerSettings := []int{1, 0} // serial, then full GOMAXPROCS fan-out
	for _, n := range sizes {
		if n > *maxQubits {
			continue
		}
		for _, prec := range precisions {
			suff := precSuffix(prec)
			rng := rand.New(rand.NewSource(int64(n)))
			s, err := qsim.NewStateWith(n, prec)
			if err != nil {
				panic(err)
			}
			randomize(s, rng, n)
			layer := diagLayer(n)

			if prec == qsim.Complex128 {
				// Reference full-sweep serial kernel: one Hadamard. The
				// reference kernels exist only at ground-truth precision.
				iters, ns := timeIt(*budget, func() {
					if err := s.ApplyGateRef(circuit.G1(circuit.H, 0, 0)); err != nil {
						panic(err)
					}
				})
				add("h/reference", n, 1, iters, ns)
			}

			for _, w := range workerSettings {
				prev := qsim.SetWorkers(w)
				iters, ns := timeIt(*budget, func() {
					if err := s.ApplyGate(circuit.G1(circuit.H, 0, 0)); err != nil {
						panic(err)
					}
				})
				add("h/strided"+suff, n, w, iters, ns)

				iters, ns = timeIt(*budget, func() {
					if err := s.ApplyGate(circuit.G2(circuit.CX, 0, n-1, 0)); err != nil {
						panic(err)
					}
				})
				add("cx/strided"+suff, n, w, iters, ns)

				iters, ns = timeIt(*budget, func() {
					if err := s.Run(layer); err != nil {
						panic(err)
					}
				})
				add("diag-layer/fused"+suff, n, w, iters, ns)
				qsim.SetWorkers(prev)
			}

			if prec == qsim.Complex128 {
				// Gate-by-gate diagonal layer through the reference kernels.
				iters, ns := timeIt(*budget, func() {
					for _, g := range layer.Gates {
						if err := s.ApplyGateRef(g); err != nil {
							panic(err)
						}
					}
				})
				add("diag-layer/gate-by-gate", n, 1, iters, ns)
			}
		}
	}

	// QAOA expectation: per-basis-state QUBO evaluation vs the dense cost
	// table, on the post-circuit state of a p=1 QAOA evaluation.
	for _, n := range []int{16, 20} {
		if n > *maxQubits {
			continue
		}
		for _, prec := range precisions {
			suff := precSuffix(prec)
			rng := rand.New(rand.NewSource(int64(n)))
			q := denseQUBO(rng, n)
			params := qaoa.NewParams(1)
			params.Gammas[0] = 0.37
			params.Betas[0] = 0.41
			ex := &qaoa.Executor{QUBO: q, Precision: prec}
			s, err := qsim.NewStateWith(n, prec)
			if err != nil {
				panic(err)
			}
			randomize(s, rng, n)

			if prec == qsim.Complex128 {
				iters, ns := timeIt(*budget, func() {
					_ = s.ExpectationDiag(func(b uint64) float64 { return q.ValueBits(b) })
				})
				add("qaoa-expectation/valuebits", n, 1, iters, ns)
			}

			table := q.CostTable()
			for _, w := range workerSettings {
				prev := qsim.SetWorkers(w)
				iters, ns := timeIt(*budget, func() {
					_ = s.ExpectationTable(table)
				})
				add("qaoa-expectation/table"+suff, n, w, iters, ns)
				qsim.SetWorkers(prev)
			}

			// Full evaluation (circuit + expectation) through the Executor.
			iters, ns := timeIt(*budget, func() {
				if _, err := ex.Expectation(params); err != nil {
					panic(err)
				}
			})
			add("qaoa-eval/table"+suff, n, 0, iters, ns)

			// Multi-seed measurement: R independent shot streams drawn
			// sequentially vs in one strided pass over the state.
			const streams, shots = 32, 64
			rngs := make([]*rand.Rand, streams)
			for r := range rngs {
				rngs[r] = rand.New(rand.NewSource(int64(1000 + r)))
			}
			iters, ns = timeIt(*budget, func() {
				for _, rr := range rngs {
					if _, err := ex.Sample(params, shots, rr); err != nil {
						panic(err)
					}
				}
			})
			add("qaoa-sample/solo"+suff, n, 0, iters, ns)
			iters, ns = timeIt(*budget, func() {
				if _, err := ex.SampleSeeds(params, shots, rngs); err != nil {
					panic(err)
				}
			})
			add("qaoa-sample/batch"+suff, n, 0, iters, ns)
			ex.Close()
		}
	}

	// Annealing restarts: R replicas swept one at a time vs in one
	// replica-strided pass (identical spins either way).
	{
		const spins, replicas = 256, 32
		rng := rand.New(rand.NewSource(7))
		prob := randomIsing(rng, spins, 8)
		sa := anneal.SimulatedAnnealer{Sweeps: 32}
		ctx := context.Background()
		mkRngs := func() []*rand.Rand {
			rngs := make([]*rand.Rand, replicas)
			for r := range rngs {
				rngs[r] = rand.New(rand.NewSource(int64(100 + r)))
			}
			return rngs
		}
		iters, ns := timeIt(*budget, func() {
			rngs := mkRngs()
			for _, rr := range rngs {
				if _, err := sa.AnnealContext(ctx, prob, rr); err != nil {
					panic(err)
				}
			}
		})
		add("sa-restarts/solo", spins, 1, iters, ns)
		probs := []*anneal.IsingProblem{prob}
		iters, ns = timeIt(*budget, func() {
			if _, err := sa.AnnealBatchContext(ctx, probs, mkRngs()); err != nil {
				panic(err)
			}
		})
		add("sa-restarts/batch", spins, 1, iters, ns)
	}

	// Warm service optimize path: encoding cached, scratch pools warm,
	// Lean responses — the steady state of a production qjoind under a
	// stream of familiar query shapes.
	{
		reg := service.DefaultRegistry(service.RegistryConfig{PegasusM: 2})
		svc := service.New(reg, service.Config{CompareRelations: -1})
		ctx := context.Background()
		req := &service.Request{Query: chainQuery(8, 1), Backend: "greedy", Lean: true}
		if _, err := svc.Optimize(ctx, req); err != nil {
			panic(err)
		}
		iters, ns := timeIt(*budget, func() {
			if _, err := svc.Optimize(ctx, req); err != nil {
				panic(err)
			}
		})
		add("optimize/warm", 8, 0, iters, ns)

		// A 16-item envelope over 4 distinct shapes: dedup collapses it to
		// 4 solves and the batch scratch arena is reused across envelopes.
		var reqs []*service.Request
		for i := 0; i < 16; i++ {
			reqs = append(reqs, &service.Request{
				Query:   chainQuery(8, float64(1+i%4)),
				Backend: "greedy",
				Lean:    true,
			})
		}
		bench := func() {
			_, errs, _ := svc.OptimizeBatch(ctx, reqs, time.Minute)
			for _, err := range errs {
				if err != nil {
					panic(err)
				}
			}
		}
		bench()
		iters, ns = timeIt(*budget, bench)
		add("optimize/batch-warm", 8, 0, iters, ns)
		if err := svc.Close(ctx); err != nil {
			panic(err)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		panic(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *baselinePath != "" {
		baseline, err := loadReport(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if n := compareReports(baseline, rep, *tol); n > 0 {
			os.Exit(1)
		}
	}
}
