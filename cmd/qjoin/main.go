// Command qjoin optimises a join ordering problem end to end on a chosen
// backend: the classical DP baseline, the simulated quantum annealer, the
// simulated gate-based QPU running QAOA, or the deadline-aware hybrid
// orchestrator that races/stages them all.
//
// Usage:
//
//	qjoin [-relations N] [-graph chain|star|cycle|clique] [-seed N]
//	      [-backend classical|milp|anneal|qaoa|hybrid] [-thresholds R]
//	      [-reads N] [-deadline D] [-strategy race|staged] [-hedge D]
//
// It generates a random Steinbrunn-style query, reports the QUBO encoding
// size (logical qubits), runs the backend, and prints the resulting join
// tree next to the classical optimum.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"quantumjoin"
	"quantumjoin/internal/hybrid"
	"quantumjoin/internal/service"
)

func main() {
	relations := flag.Int("relations", 4, "number of relations")
	graph := flag.String("graph", "chain", "query graph type: chain, star, cycle, clique")
	seed := flag.Int64("seed", 1, "random seed")
	backend := flag.String("backend", "anneal", "backend: classical, milp, anneal, qaoa, hybrid")
	thresholds := flag.Int("thresholds", 3, "number of cardinality thresholds")
	reads := flag.Int("reads", 500, "annealing reads / QAOA shots")
	deadline := flag.Duration("deadline", 5*time.Second, "hybrid backend: end-to-end deadline")
	strategy := flag.String("strategy", "staged", "hybrid backend: race or staged")
	hedge := flag.Duration("hedge", 25*time.Millisecond, "hybrid backend: hedge delay before the quantum stage")
	queryFile := flag.String("query", "", "JSON catalog file with a user-defined query (overrides -relations/-graph)")
	workload := flag.String("workload", "", "built-in JOB-style benchmark query name, or 'list'")
	flag.Parse()

	if *workload == "list" {
		for _, name := range quantumjoin.WorkloadNames() {
			fmt.Println(name)
		}
		return
	}

	var gt quantumjoin.GraphType
	switch strings.ToLower(*graph) {
	case "chain":
		gt = quantumjoin.Chain
	case "star":
		gt = quantumjoin.Star
	case "cycle":
		gt = quantumjoin.Cycle
	case "clique":
		gt = quantumjoin.Clique
	default:
		fmt.Fprintf(os.Stderr, "unknown graph type %q\n", *graph)
		os.Exit(2)
	}

	var q *quantumjoin.Query
	var err error
	if *workload != "" {
		q, err = quantumjoin.LoadWorkloadQuery(*workload)
	} else if *queryFile != "" {
		f, ferr := os.Open(*queryFile)
		if ferr != nil {
			fail(ferr)
		}
		q, err = quantumjoin.ReadCatalog(f)
		f.Close()
	} else {
		q, err = quantumjoin.GenerateQuery(quantumjoin.GeneratorConfig{
			Relations:  *relations,
			Graph:      gt,
			IntegerLog: true,
			MinLogCard: 1, MaxLogCard: 3,
			MinLogSel: 1, MaxLogSel: 2,
		}, *seed)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("query: %d relations, %d predicates\n", q.NumRelations(), q.NumPredicates())
	for i, r := range q.Relations {
		fmt.Printf("  %-4s |%s| = %.0f\n", r.Name, r.Name, q.Relations[i].Card)
	}
	for _, p := range q.Predicates {
		fmt.Printf("  %s ⋈ %s  sel = %.2g\n", q.Relations[p.R1].Name, q.Relations[p.R2].Name, p.Sel)
	}

	optOrder, optCost, err := quantumjoin.OptimalJoinOrder(q)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nclassical optimum: %s  cost %.4g\n", q.Tree(optOrder), optCost)

	if *backend == "classical" {
		gOrder, gCost := quantumjoin.GreedyJoinOrder(q)
		fmt.Printf("greedy baseline:   %s  cost %.4g\n", q.Tree(gOrder), gCost)
		return
	}

	enc, err := quantumjoin.Encode(q, quantumjoin.EncodeOptions{
		Thresholds: quantumjoin.DefaultThresholds(q, *thresholds),
		Omega:      1,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nQUBO encoding: %d logical qubits, %d quadratic terms, bound %d (Thm 5.3)\n",
		enc.NumQubits(), enc.QUBO.NumQuadTerms(), quantumjoin.QubitUpperBound(q, *thresholds, 1))

	if *backend == "milp" {
		d, err := quantumjoin.SolveMILP(enc)
		if err != nil {
			fail(err)
		}
		fmt.Printf("milp result: %s  cost %.4g (optimal w.r.t. the threshold-approximated cost)\n",
			q.Tree(d.Order), d.Cost)
		return
	}

	if *backend == "hybrid" {
		reg := service.DefaultRegistry(service.RegistryConfig{PegasusM: 4})
		hb, err := hybrid.New(hybrid.Config{
			Registry:   reg,
			Strategy:   *strategy,
			HedgeDelay: *hedge,
		})
		if err != nil {
			fail(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *deadline)
		defer cancel()
		start := time.Now()
		out, err := hb.Orchestrate(ctx, enc, service.Params{Reads: *reads, Seed: *seed})
		if err != nil {
			fail(err)
		}
		fmt.Printf("hybrid result (%s, %v deadline): %s  cost %.4g  winner=%s  elapsed=%v\n",
			out.Strategy, *deadline, q.Tree(out.Best.Order), q.Cost(out.Best.Order), out.Winner, time.Since(start).Round(time.Millisecond))
		for _, c := range out.Candidates {
			if c.Err != nil {
				fmt.Printf("  %-8s %-10v no result: %v\n", c.Backend, c.Elapsed.Round(time.Millisecond), c.Err)
			} else {
				fmt.Printf("  %-8s %-10v cost %.4g\n", c.Backend, c.Elapsed.Round(time.Millisecond), c.Cost)
			}
		}
		if cost := q.Cost(out.Best.Order); cost <= optCost*(1+1e-9) {
			fmt.Println("  → the hybrid orchestrator found the optimal join order")
		} else {
			fmt.Printf("  → best hybrid solution is %.2fx the optimum\n", cost/optCost)
		}
		return
	}

	var res quantumjoin.Result
	switch *backend {
	case "anneal":
		res, err = quantumjoin.SolveAnnealing(enc, quantumjoin.AnnealingOptions{
			Reads: *reads, Seed: *seed,
		})
		if err == nil {
			fmt.Printf("annealer: %d physical qubits after embedding\n", res.PhysicalQubits)
		}
	case "qaoa":
		if enc.NumQubits() > 24 {
			fail(fmt.Errorf("qaoa backend: %d qubits exceed the statevector budget; try fewer relations/thresholds", enc.NumQubits()))
		}
		res, err = quantumjoin.SolveQAOA(enc, quantumjoin.QAOAOptions{
			Shots: *reads, Seed: *seed, Noisy: true,
		})
	default:
		fail(fmt.Errorf("unknown backend %q", *backend))
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s result: %s  cost %.4g\n", *backend, q.Tree(res.Best.Order), res.Best.Cost)
	fmt.Printf("  valid samples: %.1f%%, optimal samples: %.1f%% (of %d)\n",
		100*res.ValidFraction, 100*res.OptimalFraction, res.Samples)
	if res.Best.Cost <= optCost*(1+1e-9) {
		fmt.Println("  → the quantum backend found the optimal join order")
	} else {
		fmt.Printf("  → best quantum solution is %.2fx the optimum\n", res.Best.Cost/optCost)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qjoin:", err)
	os.Exit(1)
}
