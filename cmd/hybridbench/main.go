// Command hybridbench measures the hybrid orchestrator: end-to-end p50/p99
// latency and plan-quality-versus-deadline curves across chain, star, and
// clique workloads, plus the warm-start effect (iterations/sweeps for a
// warm-started solver to reach its classical incumbent versus a cold
// start). Results go to a JSON file (default BENCH_hybrid.json).
//
// The curves use 18-relation queries, where the exact DP pass of the
// staged classical stage needs tens of milliseconds: deadlines below that
// return the instant greedy incumbent (cost ratio > 1 on chains, where
// greedy is measurably suboptimal), and once the deadline admits the DP
// sweep the ratio drops to 1. Longer deadlines hand the remaining budget
// to the warm-started quantum-simulated portfolio, which on QUBOs this
// size (~1.2k logical qubits) does not improve on the classical incumbent
// before the deadline — the co-design gap the paper measures.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"quantumjoin/internal/anneal"
	"quantumjoin/internal/classical"
	"quantumjoin/internal/core"
	"quantumjoin/internal/hybrid"
	"quantumjoin/internal/join"
	"quantumjoin/internal/qubo"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/service"
)

// DeadlinePoint is one (workload, deadline) cell of the quality curve.
type DeadlinePoint struct {
	DeadlineMs     int     `json:"deadline_ms"`
	Requests       int     `json:"requests"`
	Valid          int     `json:"valid"`
	MeanCostRatio  float64 `json:"mean_cost_ratio"` // hybrid cost / DP optimum
	WorstCostRatio float64 `json:"worst_cost_ratio"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
}

// WorkloadCurve is the quality-vs-deadline curve for one graph shape.
type WorkloadCurve struct {
	Graph     string          `json:"graph"`
	Relations int             `json:"relations"`
	Points    []DeadlinePoint `json:"points"`
}

// MixedClassPoint summarises one deadline class of the shared
// deadline-stratified workload (querygen.DeadlineStratified) under the
// staged strategy. schedbench replays the identical preset through the
// learned router, so routing results are comparable across benches.
type MixedClassPoint struct {
	Class         string  `json:"class"`
	DeadlineMs    int     `json:"deadline_ms"`
	Requests      int     `json:"requests"`
	Valid         int     `json:"valid"`
	MeanCostRatio float64 `json:"mean_cost_ratio"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// WarmStartCase compares cold and warm solver budgets needed to reach the
// classical incumbent's energy on one join-ordering QUBO.
type WarmStartCase struct {
	Solver          string  `json:"solver"`
	Graph           string  `json:"graph"`
	Relations       int     `json:"relations"`
	Seed            int64   `json:"seed"`
	IncumbentEnergy float64 `json:"incumbent_energy"`
	ColdBudget      int     `json:"cold_budget"` // sweeps (sa) or flips (tabu); -1 = not reached
	WarmBudget      int     `json:"warm_budget"`
}

// Report is the emitted JSON document.
type Report struct {
	GoMaxProcs int               `json:"go_max_procs"`
	NumCPU     int               `json:"num_cpu"`
	GoVersion  string            `json:"go_version"`
	Strategy   string            `json:"strategy"`
	Portfolio  []string          `json:"portfolio"`
	Curves     []WorkloadCurve   `json:"deadline_curves"`
	Mixed      []MixedClassPoint `json:"mixed_deadline"`
	WarmStart  []WarmStartCase   `json:"warm_start"`
}

func main() {
	out := flag.String("o", "BENCH_hybrid.json", "output file")
	relations := flag.Int("relations", 18, "relations per generated query (deadline curves)")
	warmRelations := flag.Int("warm-relations", 8, "relations for the warm-start cases")
	samples := flag.Int("samples", 12, "requests per (workload, deadline) point")
	mixedRelations := flag.Int("mixed-relations", 8, "relations for the mixed-deadline workload")
	mixedPerCell := flag.Int("mixed-per-cell", 1, "instances per mixed-deadline workload cell")
	mixedSeed := flag.Int64("mixed-seed", 1, "base seed of the mixed-deadline workload")
	flag.Parse()

	rep := Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Strategy:   hybrid.StrategyStaged,
		Portfolio:  []string{"tabu"},
	}

	reg := service.NewRegistry()
	for _, b := range []service.Backend{
		service.NewGreedyBackend(),
		service.NewDPBackend(),
		service.NewTabuBackend(),
	} {
		if err := reg.Register(b); err != nil {
			fail(err)
		}
	}
	hb, err := hybrid.New(hybrid.Config{
		Registry:   reg,
		Portfolio:  rep.Portfolio,
		HedgeDelay: time.Millisecond,
	})
	if err != nil {
		fail(err)
	}

	graphs := []struct {
		name string
		g    querygen.GraphType
	}{{"chain", querygen.Chain}, {"star", querygen.Star}, {"clique", querygen.Clique}}
	deadlines := []time.Duration{
		20 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		time.Second,
	}

	for _, gr := range graphs {
		curve := WorkloadCurve{Graph: gr.name, Relations: *relations}
		for _, dl := range deadlines {
			pt := DeadlinePoint{DeadlineMs: int(dl / time.Millisecond)}
			var latencies []float64
			var ratioSum float64
			for s := 1; s <= *samples; s++ {
				q, enc, opt := instance(gr.g, *relations, int64(s))
				ctx, cancel := context.WithTimeout(context.Background(), dl)
				start := time.Now()
				d, err := hb.Solve(ctx, enc, service.Params{Reads: 8, Seed: int64(s)})
				elapsed := time.Since(start)
				cancel()
				pt.Requests++
				latencies = append(latencies, float64(elapsed)/float64(time.Millisecond))
				if err != nil || !d.Valid {
					continue
				}
				pt.Valid++
				ratio := q.Cost(d.Order) / opt
				ratioSum += ratio
				if ratio > pt.WorstCostRatio {
					pt.WorstCostRatio = ratio
				}
			}
			if pt.Valid > 0 {
				pt.MeanCostRatio = ratioSum / float64(pt.Valid)
			}
			pt.P50Ms = percentile(latencies, 0.50)
			pt.P99Ms = percentile(latencies, 0.99)
			curve.Points = append(curve.Points, pt)
			fmt.Printf("%-6s deadline %4dms: valid %d/%d, mean ratio %.3f, p50 %.1fms, p99 %.1fms\n",
				gr.name, pt.DeadlineMs, pt.Valid, pt.Requests, pt.MeanCostRatio, pt.P50Ms, pt.P99Ms)
		}
		rep.Curves = append(rep.Curves, curve)
	}

	rep.Mixed = mixedDeadline(hb, *mixedRelations, *mixedPerCell, *mixedSeed)
	for _, m := range rep.Mixed {
		fmt.Printf("mixed %-6s deadline %4dms: valid %d/%d, mean ratio %.3f, p50 %.1fms, p99 %.1fms\n",
			m.Class, m.DeadlineMs, m.Valid, m.Requests, m.MeanCostRatio, m.P50Ms, m.P99Ms)
	}

	for _, seed := range []int64{1, 2, 3} {
		rep.WarmStart = append(rep.WarmStart,
			warmTabuCase("clique", *warmRelations, seed),
			warmSACase("clique", *warmRelations, seed))
	}
	for _, w := range rep.WarmStart {
		fmt.Printf("warm-start %-4s seed %d: cold budget %d, warm budget %d (incumbent %.4g)\n",
			w.Solver, w.Seed, w.ColdBudget, w.WarmBudget, w.IncumbentEnergy)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	encJSON := json.NewEncoder(f)
	encJSON.SetIndent("", "  ")
	if err := encJSON.Encode(rep); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// mixedDeadline runs the staged strategy over the shared deadline-
// stratified preset and aggregates plan quality per deadline class.
func mixedDeadline(hb *hybrid.Backend, relations, perCell int, seed int64) []MixedClassPoint {
	items, err := querygen.DeadlineStratified(querygen.WorkloadConfig{
		Relations: relations,
		PerCell:   perCell,
		Seed:      seed,
	})
	if err != nil {
		fail(err)
	}
	order := []string{querygen.ClassTight, querygen.ClassMedium, querygen.ClassLoose}
	byClass := map[string]*MixedClassPoint{}
	latencies := map[string][]float64{}
	ratios := map[string]float64{}
	for _, it := range items {
		pt := byClass[it.Class]
		if pt == nil {
			pt = &MixedClassPoint{Class: it.Class, DeadlineMs: int(it.Deadline / time.Millisecond)}
			byClass[it.Class] = pt
		}
		enc, err := core.Encode(it.Query, core.Options{Thresholds: core.DefaultThresholds(it.Query, 2)})
		if err != nil {
			fail(err)
		}
		opt, err := classical.OptimalCost(it.Query)
		if err != nil {
			fail(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), it.Deadline)
		start := time.Now()
		d, err := hb.Solve(ctx, enc, service.Params{Reads: 8, Seed: it.Seed})
		elapsed := time.Since(start)
		cancel()
		pt.Requests++
		latencies[it.Class] = append(latencies[it.Class], float64(elapsed)/float64(time.Millisecond))
		if err != nil || !d.Valid {
			continue
		}
		pt.Valid++
		ratios[it.Class] += it.Query.Cost(d.Order) / opt
	}
	var out []MixedClassPoint
	for _, class := range order {
		pt := byClass[class]
		if pt == nil {
			continue
		}
		if pt.Valid > 0 {
			pt.MeanCostRatio = ratios[class] / float64(pt.Valid)
		}
		pt.P50Ms = percentile(latencies[class], 0.50)
		pt.P99Ms = percentile(latencies[class], 0.99)
		out = append(out, *pt)
	}
	return out
}

// instance generates a workload query, its encoding, and the DP optimum.
// The paper-style integer-log parameters produce instances where greedy is
// measurably suboptimal, so the quality curve has room to move.
func instance(g querygen.GraphType, n int, seed int64) (*join.Query, *core.Encoding, float64) {
	q, err := querygen.Generate(querygen.Config{
		Relations:  n,
		Graph:      g,
		IntegerLog: true,
		MinLogCard: 1, MaxLogCard: 3,
		MinLogSel: 1, MaxLogSel: 2,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		fail(err)
	}
	enc, err := core.Encode(q, core.Options{Thresholds: core.DefaultThresholds(q, 2)})
	if err != nil {
		fail(err)
	}
	opt, err := classical.OptimalCost(q)
	if err != nil {
		fail(err)
	}
	return q, enc, opt
}

// warmIncumbent builds the warm-start state the staged strategy feeds its
// quantum stage: the greedy order embedded into the full QUBO space.
func warmIncumbent(q *join.Query, enc *core.Encoding) []bool {
	decision, err := enc.EncodeOrder(greedyOrder(q))
	if err != nil {
		fail(err)
	}
	full, err := enc.CompleteSlacks(decision)
	if err != nil {
		fail(err)
	}
	return full
}

func warmTabuCase(graph string, n int, seed int64) WarmStartCase {
	q, enc, _ := instance(querygen.Clique, n, seed)
	warm := warmIncumbent(q, enc)
	target := enc.QUBO.Value(warm)
	scan := func(init []bool) int {
		for _, iters := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192} {
			ts := qubo.TabuSearch{MaxIters: iters, Restarts: 1, InitialState: init}
			if sol := ts.Solve(enc.QUBO, rand.New(rand.NewSource(seed+99))); sol.Value <= target+1e-9 {
				return iters
			}
		}
		return -1
	}
	return WarmStartCase{
		Solver: "tabu", Graph: graph, Relations: n, Seed: seed,
		IncumbentEnergy: target,
		ColdBudget:      scan(nil),
		WarmBudget:      scan(warm),
	}
}

func warmSACase(graph string, n int, seed int64) WarmStartCase {
	q, enc, _ := instance(querygen.Clique, n, seed)
	warm := warmIncumbent(q, enc)
	prob, spins := toIsingProblem(enc.QUBO, warm)
	target := prob.Energy(spins)
	scan := func(init []int8) int {
		for _, sweeps := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
			sa := anneal.SimulatedAnnealer{Sweeps: sweeps, InitialState: init}
			if init != nil {
				sa.BetaMin = 2 // reverse-annealing schedule
			}
			s := sa.Anneal(prob, rand.New(rand.NewSource(seed+77)))
			if prob.Energy(s) <= target+1e-9 {
				return sweeps
			}
		}
		return -1
	}
	return WarmStartCase{
		Solver: "sa", Graph: graph, Relations: n, Seed: seed,
		IncumbentEnergy: target,
		ColdBudget:      scan(nil),
		WarmBudget:      scan(spins),
	}
}

// toIsingProblem converts the QUBO into the annealer's Ising form and the
// boolean warm state into spins (x=1 → s=+1, matching qubo.ToIsing).
func toIsingProblem(q *qubo.QUBO, x []bool) (*anneal.IsingProblem, []int8) {
	is := q.ToIsing()
	p := anneal.NewIsingProblem(is.N)
	copy(p.H, is.H)
	p.Const = is.Offset
	for pair, w := range is.J {
		p.AddCoupling(pair.I, pair.J, w)
	}
	spins := make([]int8, len(x))
	for i, b := range x {
		if b {
			spins[i] = 1
		} else {
			spins[i] = -1
		}
	}
	return p, spins
}

func greedyOrder(q *join.Query) join.Order {
	// Reuse the service backend so the incumbent matches what the staged
	// strategy would produce.
	be := service.NewGreedyBackend()
	enc, err := core.Encode(q, core.Options{Thresholds: core.DefaultThresholds(q, 1)})
	if err != nil {
		fail(err)
	}
	d, err := be.Solve(context.Background(), enc, service.Params{})
	if err != nil {
		fail(err)
	}
	return d.Order
}

// percentile returns the q-quantile of xs (nearest-rank).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hybridbench:", err)
	os.Exit(1)
}
