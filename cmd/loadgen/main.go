// Command loadgen drives a qjoind cluster hard and writes a benchmark
// report (BENCH_cluster.json). The run has four phases:
//
//  1. sequential — -seq individual POST /v1/optimize requests spread over
//     -c workers and all -targets round-robin;
//  2. batch — -batch-requests items posted as /v1/optimize/batch
//     envelopes of -batch-size;
//  3. coalesce — -coalesce bursts of -coalesce-width byte-identical
//     concurrent requests, which the owning node must collapse into one
//     solve each;
//  4. chaos — -chaos requests driven only at the surviving
//     -chaos-targets while an external harness kills or drains the other
//     fleet members (optionally POSTing /v1/drain to -chaos-drain at the
//     halfway mark); its latencies and statuses fold into the run-wide
//     gates, so this is where availability under churn is judged.
//
// Queries are deterministic (-seed): -shapes distinct chain queries over
// -relations relations with log-uniform cardinalities. Every latency is
// recorded exactly (no reservoir), so the reported p50/p99 are true
// quantiles. Before and after the run the tool scrapes GET /v1/cluster on
// every target and reports the counter deltas (forwards, coalesced
// solves, batch splits) alongside the latency numbers.
//
// Gates (exit 1 when violated): -min-2xx success ratio, zero 5xx,
// -max-p99 whole-run latency bound, -require-forwards (the fleet actually
// forwarded), -require-coalesce (the singleflight actually collapsed
// bursts).
//
// With -profile the tool additionally measures per-query service rate of
// the batch endpoint against the sequential endpoint on the same
// workload, using the BENCH_obs methodology: -rounds interleaved rounds,
// rotating which mode runs first, reporting the median of per-round
// paired ratios (drift moves both sides of a ratio together; the median
// rejects outlier rounds), plus a fixed-bucket latency histogram.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quantumjoin/internal/cluster"
)

// Report is the BENCH_cluster.json schema.
type Report struct {
	Targets        []string       `json:"targets"`
	TotalRequests  int64          `json:"total_requests"`
	TotalItems     int64          `json:"total_items"`
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	ThroughputQPS  float64        `json:"throughput_qps"`
	Sequential     *PhaseReport   `json:"sequential,omitempty"`
	Batch          *PhaseReport   `json:"batch,omitempty"`
	Coalesce       *PhaseReport   `json:"coalesce,omitempty"`
	Chaos          *PhaseReport   `json:"chaos,omitempty"`
	Status         StatusCounts   `json:"status"`
	Cluster        ClusterDeltas  `json:"cluster"`
	Profile        *ProfileReport `json:"profile,omitempty"`
	Gates          Gates          `json:"gates"`
	Pass           bool           `json:"pass"`
}

// PhaseReport summarises one load phase. Requests counts HTTP round
// trips; Items counts optimisation jobs (for the batch phase one request
// carries many items). Latency quantiles are per HTTP round trip.
type PhaseReport struct {
	Requests       int64   `json:"requests"`
	Items          int64   `json:"items"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	ThroughputQPS  float64 `json:"throughput_qps"` // items per second
	P50Ms          float64 `json:"p50_ms"`
	P90Ms          float64 `json:"p90_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
}

// StatusCounts aggregates response classes over the whole run.
type StatusCounts struct {
	OK2xx     int64 `json:"2xx"`
	Client4xx int64 `json:"4xx"`
	Server5xx int64 `json:"5xx"`
	Transport int64 `json:"transport_errors"`
}

// ClusterDeltas is the sum over all targets of the /v1/cluster counter
// movement during the run.
type ClusterDeltas struct {
	RoutedLocal    int64 `json:"routed_local"`
	Forwards       int64 `json:"forwards"`
	ForwardErrors  int64 `json:"forward_errors"`
	ForcedLocal    int64 `json:"forced_local"`
	CoalesceJoined int64 `json:"coalesce_joined"`
	BatchSplits    int64 `json:"batch_splits"`
	BatchForwards  int64 `json:"batch_forwards"`
	BatchFallbacks int64 `json:"batch_fallbacks"`
	Hedges         int64 `json:"hedges"`
	HedgeWins      int64 `json:"hedge_wins"`
	WarmPushes     int64 `json:"warm_pushes"`
	WarmsReceived  int64 `json:"warms_received"`
}

// ProfileReport is the -profile output: the batch endpoint's per-query
// advantage over the sequential endpoint on the same workload, plus the
// run's latency histogram.
type ProfileReport struct {
	Rounds             int            `json:"rounds"`
	QueriesPerRound    int            `json:"queries_per_round"`
	NsPerQuerySeq      float64        `json:"ns_per_query_sequential"`
	NsPerQueryBatch    float64        `json:"ns_per_query_batch"`
	BatchSpeedup       float64        `json:"batch_speedup"` // median of per-round seq/batch ratios
	LatencyHistogramMs []HistogramBin `json:"latency_histogram_ms"`
	PerRoundSpeedups   []float64      `json:"per_round_speedups"`
}

// HistogramBin is one cumulative latency bucket (Prometheus-style le;
// the overflow bucket is "+Inf").
type HistogramBin struct {
	LeMs  string `json:"le_ms"`
	Count int64  `json:"count"`
}

// Gates records which hard checks were armed and whether each held.
type Gates struct {
	Min2xxRatio     float64 `json:"min_2xx_ratio"`
	Got2xxRatio     float64 `json:"got_2xx_ratio"`
	OK2xx           bool    `json:"ok_2xx"`
	Zero5xx         bool    `json:"zero_5xx"`
	RequireForwards bool    `json:"require_forwards"`
	ForwardsSeen    bool    `json:"forwards_seen"`
	RequireCoalesce bool    `json:"require_coalesce"`
	CoalesceSeen    bool    `json:"coalesce_seen"`
	MaxP99Ms        float64 `json:"max_p99_ms,omitempty"`
	GotP99Ms        float64 `json:"got_p99_ms"`
	OKP99           bool    `json:"ok_p99"`
}

// splitList parses a comma-separated list of base URLs, trimming
// whitespace and trailing slashes and dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSuffix(strings.TrimSpace(p), "/"); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// workload is the deterministic query corpus: one optimize body and one
// batch item per shape, identical bytes on every use so coalescing and
// cross-node cache keys behave as in production.
type workload struct {
	bodies [][]byte // full /v1/optimize bodies
	items  []string // raw items for batch envelopes
}

func buildWorkload(shapes, relations int, backend string, seed int64) *workload {
	rng := rand.New(rand.NewSource(seed))
	w := &workload{}
	for s := 0; s < shapes; s++ {
		var rels, preds []string
		for i := 0; i < relations; i++ {
			// Log-uniform cardinalities in [10, 1e5): the cost landscape
			// varies enough that join order actually matters.
			card := math.Exp(rng.Float64()*math.Log(1e4)) * 10
			rels = append(rels, fmt.Sprintf(`{"name": "r%d", "cardinality": %.0f}`, i, card))
			if i > 0 {
				sel := math.Exp(rng.Float64() * math.Log(1e-3)) // (0.001, 1]
				preds = append(preds, fmt.Sprintf(`{"left": "r%d", "right": "r%d", "selectivity": %.6f}`, i-1, i, sel))
			}
		}
		// A third of the shapes get one extra edge so not everything is a
		// pure chain.
		if relations > 2 && s%3 == 0 {
			a := rng.Intn(relations - 2)
			b := a + 2 + rng.Intn(relations-a-2)
			preds = append(preds, fmt.Sprintf(`{"left": "r%d", "right": "r%d", "selectivity": %.6f}`, a, b, 0.01))
		}
		query := fmt.Sprintf(`{"relations": [%s], "predicates": [%s]}`,
			strings.Join(rels, ", "), strings.Join(preds, ", "))
		item := fmt.Sprintf(`{"query": %s, "seed": 7`, query)
		if backend != "" {
			item += fmt.Sprintf(`, "backend": %q`, backend)
		}
		item += `}`
		w.items = append(w.items, item)
		w.bodies = append(w.bodies, []byte(item))
	}
	return w
}

// collector accumulates per-request latencies and status classes from
// many workers.
type collector struct {
	mu        sync.Mutex
	latencies []float64 // ms per HTTP round trip
	status    StatusCounts
}

func (c *collector) record(ms float64, status int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latencies = append(c.latencies, ms)
	switch {
	case err != nil:
		c.status.Transport++
	case status >= 500:
		c.status.Server5xx++
	case status >= 400:
		c.status.Client4xx++
	default:
		c.status.OK2xx++
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func (c *collector) phase(items int64, elapsed time.Duration) *PhaseReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	sorted := append([]float64(nil), c.latencies...)
	sort.Float64s(sorted)
	p := &PhaseReport{
		Requests:       int64(len(c.latencies)),
		Items:          items,
		ElapsedSeconds: elapsed.Seconds(),
		P50Ms:          quantile(sorted, 0.50),
		P90Ms:          quantile(sorted, 0.90),
		P99Ms:          quantile(sorted, 0.99),
	}
	if len(sorted) > 0 {
		p.MaxMs = sorted[len(sorted)-1]
	}
	if elapsed > 0 {
		p.ThroughputQPS = float64(items) / elapsed.Seconds()
	}
	return p
}

// post issues one POST and records it; the body is discarded after a full
// read so connections are reused.
func post(client *http.Client, url string, body []byte, c *collector) (status int) {
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		c.record(ms, 0, err)
		return 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	c.record(ms, resp.StatusCode, nil)
	return resp.StatusCode
}

// runWorkers fans n jobs over c workers; job i calls fn(i).
func runWorkers(n, c int, fn func(i int)) time.Duration {
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// scrape reads one target's cluster counters; ok is false when the
// target is unreachable or does not expose /v1/cluster (e.g. a
// non-clustered daemon, or a node killed during a chaos phase).
func scrape(client *http.Client, target string) (cluster.Counters, bool) {
	resp, err := client.Get(target + "/v1/cluster")
	if err != nil {
		return cluster.Counters{}, false
	}
	defer resp.Body.Close()
	var status cluster.StatusResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&status) != nil {
		return cluster.Counters{}, false
	}
	return status.Counters, true
}

func scrapeAll(client *http.Client, targets []string) map[string]cluster.Counters {
	out := make(map[string]cluster.Counters, len(targets))
	for _, t := range targets {
		if c, ok := scrape(client, t); ok {
			out[t] = c
		}
	}
	return out
}

// deltas sums counter movement over the targets still answering at the
// end of the run; nodes killed or drained mid-run drop out rather than
// contributing bogus negative deltas.
func deltas(before, after map[string]cluster.Counters) ClusterDeltas {
	var d ClusterDeltas
	for t, a := range after {
		b := before[t]
		d.RoutedLocal += a.RoutedLocal - b.RoutedLocal
		d.Forwards += a.Forwards - b.Forwards
		d.ForwardErrors += a.ForwardErrors - b.ForwardErrors
		d.ForcedLocal += a.ForcedLocal - b.ForcedLocal
		d.CoalesceJoined += a.CoalesceJoined - b.CoalesceJoined
		d.BatchSplits += a.BatchSplits - b.BatchSplits
		d.BatchForwards += a.BatchForwards - b.BatchForwards
		d.BatchFallbacks += a.BatchFallbacks - b.BatchFallbacks
		d.Hedges += a.Hedges - b.Hedges
		d.HedgeWins += a.HedgeWins - b.HedgeWins
		d.WarmPushes += a.WarmPushes - b.WarmPushes
		d.WarmsReceived += a.WarmsReceived - b.WarmsReceived
	}
	return d
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

var histogramBoundsMs = []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

func histogram(latencies []float64) []HistogramBin {
	bins := make([]HistogramBin, len(histogramBoundsMs)+1)
	counts := make([]int64, len(histogramBoundsMs)+1)
	for _, ms := range latencies {
		i := sort.SearchFloat64s(histogramBoundsMs, ms)
		counts[i]++
	}
	var cum int64
	for i, b := range histogramBoundsMs {
		cum += counts[i]
		bins[i] = HistogramBin{LeMs: strconv.FormatFloat(b, 'g', -1, 64), Count: cum}
	}
	bins[len(histogramBoundsMs)] = HistogramBin{LeMs: "+Inf", Count: cum + counts[len(histogramBoundsMs)]}
	return bins
}

func main() {
	targetsFlag := flag.String("targets", "http://127.0.0.1:8077", "comma-separated qjoind base URLs")
	seq := flag.Int("seq", 2000, "sequential phase: individual /v1/optimize requests")
	batchRequests := flag.Int("batch-requests", 8000, "batch phase: total items sent through /v1/optimize/batch")
	batchSize := flag.Int("batch-size", 50, "batch phase: items per envelope")
	coalesceBursts := flag.Int("coalesce", 20, "coalesce phase: number of identical-request bursts")
	coalesceWidth := flag.Int("coalesce-width", 32, "coalesce phase: concurrent identical requests per burst")
	concurrency := flag.Int("c", 32, "worker goroutines for the sequential and batch phases")
	shapes := flag.Int("shapes", 64, "distinct query shapes in the workload")
	relations := flag.Int("relations", 6, "relations per query")
	backend := flag.String("backend", "", "backend to request (empty = server default)")
	seed := flag.Int64("seed", 1, "workload generator seed")
	profile := flag.Bool("profile", false, "measure batch vs sequential per-query service rate (paired rounds)")
	rounds := flag.Int("rounds", 5, "profile rounds (median of paired per-round ratios)")
	profileQueries := flag.Int("profile-queries", 2000, "queries per profile round and mode")
	out := flag.String("o", "BENCH_cluster.json", "report file")
	min2xx := flag.Float64("min-2xx", 0.99, "fail unless at least this fraction of requests got 2xx")
	requireForwards := flag.Bool("require-forwards", false, "fail unless the cluster forwarded at least one request")
	requireCoalesce := flag.Bool("require-coalesce", false, "fail unless at least one request was coalesced")
	requestTimeout := flag.Duration("request-timeout", 60*time.Second, "client-side timeout per HTTP request")
	chaosReqs := flag.Int("chaos", 0, "chaos phase: /v1/optimize requests driven at the surviving -chaos-targets while nodes are killed/drained externally (0 disables)")
	chaosTargets := flag.String("chaos-targets", "", "chaos phase: comma-separated base URLs that survive the chaos (default: the first -targets entry)")
	chaosDrain := flag.String("chaos-drain", "", "chaos phase: POST /v1/drain to this base URL halfway through the phase")
	maxP99 := flag.Float64("max-p99", 0, "fail if the whole-run p99 latency exceeds this many milliseconds (0 disables)")
	flag.Parse()

	targets := splitList(*targetsFlag)
	if len(targets) == 0 || targets[0] == "" {
		fmt.Fprintln(os.Stderr, "loadgen: no targets")
		os.Exit(2)
	}
	w := buildWorkload(*shapes, *relations, *backend, *seed)
	client := &http.Client{
		Timeout: *requestTimeout,
		Transport: &http.Transport{
			MaxIdleConns:        4 * *concurrency,
			MaxIdleConnsPerHost: 2 * *concurrency,
		},
	}

	report := Report{Targets: targets, Gates: Gates{
		Min2xxRatio:     *min2xx,
		RequireForwards: *requireForwards,
		RequireCoalesce: *requireCoalesce,
	}}
	before := scrapeAll(client, targets)
	runStart := time.Now()
	all := &collector{}
	merge := func(c *collector) {
		all.mu.Lock()
		defer all.mu.Unlock()
		all.latencies = append(all.latencies, c.latencies...)
		all.status.OK2xx += c.status.OK2xx
		all.status.Client4xx += c.status.Client4xx
		all.status.Server5xx += c.status.Server5xx
		all.status.Transport += c.status.Transport
	}

	// Phase 1: sequential.
	if *seq > 0 {
		c := &collector{}
		elapsed := runWorkers(*seq, *concurrency, func(i int) {
			post(client, targets[i%len(targets)]+"/v1/optimize", w.bodies[i%len(w.bodies)], c)
		})
		report.Sequential = c.phase(int64(*seq), elapsed)
		report.TotalRequests += int64(*seq)
		report.TotalItems += int64(*seq)
		merge(c)
		fmt.Fprintf(os.Stderr, "loadgen: sequential %d reqs in %.1fs (%.0f qps, p99 %.1fms)\n",
			*seq, elapsed.Seconds(), report.Sequential.ThroughputQPS, report.Sequential.P99Ms)
	}

	// Phase 2: batch envelopes.
	if *batchRequests > 0 && *batchSize > 0 {
		envelopes := (*batchRequests + *batchSize - 1) / *batchSize
		rng := rand.New(rand.NewSource(*seed + 1))
		bodies := make([][]byte, envelopes)
		remaining := *batchRequests
		for e := range bodies {
			n := *batchSize
			if n > remaining {
				n = remaining
			}
			remaining -= n
			items := make([]string, n)
			for j := range items {
				items[j] = w.items[rng.Intn(len(w.items))]
			}
			bodies[e] = []byte(`{"requests": [` + strings.Join(items, ", ") + `]}`)
		}
		c := &collector{}
		elapsed := runWorkers(envelopes, *concurrency, func(i int) {
			post(client, targets[i%len(targets)]+"/v1/optimize/batch", bodies[i], c)
		})
		report.Batch = c.phase(int64(*batchRequests), elapsed)
		report.TotalRequests += int64(envelopes)
		report.TotalItems += int64(*batchRequests)
		merge(c)
		fmt.Fprintf(os.Stderr, "loadgen: batch %d items / %d envelopes in %.1fs (%.0f items/s, envelope p99 %.1fms)\n",
			*batchRequests, envelopes, elapsed.Seconds(), report.Batch.ThroughputQPS, report.Batch.P99Ms)
	}

	// Phase 3: coalesce bursts — width identical bodies in flight at once
	// against one target each.
	if *coalesceBursts > 0 && *coalesceWidth > 0 {
		c := &collector{}
		start := time.Now()
		for b := 0; b < *coalesceBursts; b++ {
			body := w.bodies[b%len(w.bodies)]
			target := targets[b%len(targets)] + "/v1/optimize"
			var wg sync.WaitGroup
			for k := 0; k < *coalesceWidth; k++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					post(client, target, body, c)
				}()
			}
			wg.Wait()
		}
		elapsed := time.Since(start)
		n := int64(*coalesceBursts) * int64(*coalesceWidth)
		report.Coalesce = c.phase(n, elapsed)
		report.TotalRequests += n
		report.TotalItems += n
		merge(c)
		fmt.Fprintf(os.Stderr, "loadgen: coalesce %d bursts x %d in %.1fs (p99 %.1fms)\n",
			*coalesceBursts, *coalesceWidth, elapsed.Seconds(), report.Coalesce.P99Ms)
	}

	// Phase 4: chaos — drive only the surviving targets while an external
	// harness (CI, chaosbench) kills or drains the rest; optionally trigger
	// one graceful drain ourselves at the halfway mark. The phase's numbers
	// fold into the run-wide gates, so availability under fleet churn is
	// what -min-2xx and -max-p99 judge.
	if *chaosReqs > 0 {
		survivors := targets[:1]
		if *chaosTargets != "" {
			survivors = splitList(*chaosTargets)
		}
		c := &collector{}
		var drainOnce sync.Once
		half := *chaosReqs / 2
		elapsed := runWorkers(*chaosReqs, *concurrency, func(i int) {
			if *chaosDrain != "" && i >= half {
				drainOnce.Do(func() {
					resp, err := client.Post(*chaosDrain+"/v1/drain", "application/json", nil)
					if err != nil {
						fmt.Fprintf(os.Stderr, "loadgen: chaos: drain request to %s failed: %v\n", *chaosDrain, err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					fmt.Fprintf(os.Stderr, "loadgen: chaos: drain requested on %s (status %d)\n", *chaosDrain, resp.StatusCode)
				})
			}
			post(client, survivors[i%len(survivors)]+"/v1/optimize", w.bodies[i%len(w.bodies)], c)
		})
		report.Chaos = c.phase(int64(*chaosReqs), elapsed)
		report.TotalRequests += int64(*chaosReqs)
		report.TotalItems += int64(*chaosReqs)
		merge(c)
		fmt.Fprintf(os.Stderr, "loadgen: chaos %d reqs over %d survivors in %.1fs (p99 %.1fms)\n",
			*chaosReqs, len(survivors), elapsed.Seconds(), report.Chaos.P99Ms)
	}

	report.ElapsedSeconds = time.Since(runStart).Seconds()
	if report.ElapsedSeconds > 0 {
		report.ThroughputQPS = float64(report.TotalItems) / report.ElapsedSeconds
	}
	report.Status = all.status
	report.Cluster = deltas(before, scrapeAll(client, targets))

	// Profile: paired sequential-vs-batch rounds on the same workload.
	if *profile {
		report.Profile = runProfile(client, targets, w, *profileQueries, *batchSize, *rounds, *concurrency, *seed, all)
	}

	// Gates.
	total := float64(report.Status.OK2xx + report.Status.Client4xx + report.Status.Server5xx + report.Status.Transport)
	if total > 0 {
		report.Gates.Got2xxRatio = float64(report.Status.OK2xx) / total
	}
	report.Gates.OK2xx = report.Gates.Got2xxRatio >= *min2xx
	report.Gates.Zero5xx = report.Status.Server5xx == 0
	report.Gates.ForwardsSeen = report.Cluster.Forwards+report.Cluster.BatchForwards > 0
	report.Gates.CoalesceSeen = report.Cluster.CoalesceJoined > 0
	all.mu.Lock()
	overall := append([]float64(nil), all.latencies...)
	all.mu.Unlock()
	sort.Float64s(overall)
	report.Gates.MaxP99Ms = *maxP99
	report.Gates.GotP99Ms = quantile(overall, 0.99)
	report.Gates.OKP99 = *maxP99 <= 0 || report.Gates.GotP99Ms <= *maxP99
	report.Pass = report.Gates.OK2xx && report.Gates.Zero5xx && report.Gates.OKP99 &&
		(!*requireForwards || report.Gates.ForwardsSeen) &&
		(!*requireCoalesce || report.Gates.CoalesceSeen)

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d requests / %d items in %.1fs (%.0f items/s), 2xx %.3f, forwards %d, coalesced %d -> %s\n",
		report.TotalRequests, report.TotalItems, report.ElapsedSeconds, report.ThroughputQPS,
		report.Gates.Got2xxRatio, report.Cluster.Forwards, report.Cluster.CoalesceJoined, *out)
	if !report.Pass {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: gates %+v\n", report.Gates)
		os.Exit(1)
	}
}

// runProfile measures the per-query service rate of the batch endpoint
// against the sequential endpoint on an identical query list, in
// interleaved rounds with rotating start order.
func runProfile(client *http.Client, targets []string, w *workload, queries, batchSize, rounds, concurrency int, seed int64, all *collector) *ProfileReport {
	rng := rand.New(rand.NewSource(seed + 2))
	idx := make([]int, queries)
	for i := range idx {
		idx[i] = rng.Intn(len(w.items))
	}
	envelopes := (queries + batchSize - 1) / batchSize
	batchBodies := make([][]byte, envelopes)
	for e := range batchBodies {
		lo, hi := e*batchSize, (e+1)*batchSize
		if hi > queries {
			hi = queries
		}
		items := make([]string, 0, hi-lo)
		for _, k := range idx[lo:hi] {
			items = append(items, w.items[k])
		}
		batchBodies[e] = []byte(`{"requests": [` + strings.Join(items, ", ") + `]}`)
	}

	runSeq := func() float64 {
		c := &collector{}
		elapsed := runWorkers(queries, concurrency, func(i int) {
			post(client, targets[i%len(targets)]+"/v1/optimize", w.bodies[idx[i]], c)
		})
		return float64(elapsed.Nanoseconds()) / float64(queries)
	}
	runBatch := func() float64 {
		c := &collector{}
		elapsed := runWorkers(envelopes, concurrency, func(i int) {
			post(client, targets[i%len(targets)]+"/v1/optimize/batch", batchBodies[i], c)
		})
		return float64(elapsed.Nanoseconds()) / float64(queries)
	}

	seqNs := make([]float64, rounds)
	batchNs := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		// Rotate which mode runs first so neither systematically enjoys
		// the quieter slot.
		if r%2 == 0 {
			seqNs[r] = runSeq()
			batchNs[r] = runBatch()
		} else {
			batchNs[r] = runBatch()
			seqNs[r] = runSeq()
		}
		fmt.Fprintf(os.Stderr, "loadgen: profile round %d: seq %.0f ns/q, batch %.0f ns/q (x%.2f)\n",
			r+1, seqNs[r], batchNs[r], seqNs[r]/batchNs[r])
	}
	speedups := make([]float64, rounds)
	for r := range speedups {
		speedups[r] = seqNs[r] / batchNs[r]
	}
	all.mu.Lock()
	hist := histogram(all.latencies)
	all.mu.Unlock()
	return &ProfileReport{
		Rounds:             rounds,
		QueriesPerRound:    queries,
		NsPerQuerySeq:      median(seqNs),
		NsPerQueryBatch:    median(seqNs) / median(speedups),
		BatchSpeedup:       median(speedups),
		LatencyHistogramMs: hist,
		PerRoundSpeedups:   speedups,
	}
}
