// Command experiments regenerates the paper's tables and figures on the
// simulated substrates and prints them as text tables.
//
// Usage:
//
//	experiments [-full] [-seed N] [-run table1,figure2,table2,timing,figure3,table3,figure4,figure5] [-timings FILE]
//
// The default -run=all executes everything with the quick configuration;
// -full switches to paper-scale dimensions (hours of single-core time —
// budget accordingly). With -timings FILE, every experiment runs under an
// internal/obs tracer and the per-stage span breakdown (encode, transpile,
// solve, embed: count and total milliseconds per experiment) is written to
// FILE as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"quantumjoin/internal/experiments"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/textplot"
	"quantumjoin/internal/transpile"
)

// stageAgg accumulates the spans of one stage (span name) within one
// experiment.
type stageAgg struct {
	Count   int     `json:"count"`
	TotalMs float64 `json:"total_ms"`
}

// stepTimings is the per-experiment entry of the -timings JSON: wall time
// of the whole step plus the per-stage span totals recorded by the tracer.
type stepTimings struct {
	WallMs float64              `json:"wall_ms"`
	Stages map[string]*stageAgg `json:"stages"`
}

// collectStages folds a span subtree into the stage map. The experiment
// root span (named after the step: figure2, table3, ...) is a grouping
// wrapper, not a stage, so it contributes only its descendants; any
// other span — including standalone roots of wrapperless experiments,
// e.g. timing's bare encode spans — is a stage.
func collectStages(m map[string]*stageAgg, s obs.SpanSnapshot, wrapper string) {
	if s.Name != wrapper {
		a := m[s.Name]
		if a == nil {
			a = &stageAgg{}
			m[s.Name] = a
		}
		a.Count++
		a.TotalMs += s.DurationMs
	}
	for _, c := range s.Children {
		collectStages(m, c, "")
	}
}

func main() {
	full := flag.Bool("full", false, "paper-scale dimensions instead of the quick configuration")
	seed := flag.Int64("seed", 1, "master random seed")
	run := flag.String("run", "all", "comma-separated experiments to run")
	timings := flag.String("timings", "", "write per-stage timing breakdowns (JSON) to this file")
	flag.Parse()

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Seed = *seed

	selected := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		selected[strings.TrimSpace(strings.ToLower(name))] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }

	ran := 0
	allTimings := map[string]*stepTimings{}
	step := func(name string, f func() error) {
		if !want(name) {
			return
		}
		ran++
		var agg *stepTimings
		if *timings != "" {
			// The sink sees every finished root trace regardless of
			// sampling, so a tiny store suffices; the mutex covers roots
			// finishing on worker goroutines (e.g. timing's bare encodes).
			agg = &stepTimings{Stages: map[string]*stageAgg{}}
			var mu sync.Mutex
			tr := obs.NewTracer(obs.Options{Capacity: 4})
			tr.SetSink(func(t obs.TraceSnapshot) {
				mu.Lock()
				defer mu.Unlock()
				collectStages(agg.Stages, t.Root, name)
			})
			cfg.Tracer = tr
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if agg != nil {
			agg.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
			allTimings[name] = agg
			cfg.Tracer = nil
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	step("table1", func() error {
		res, err := experiments.RunTable1(cfg)
		if err != nil {
			return err
		}
		res.Write(os.Stdout)
		return nil
	})
	step("figure2", func() error {
		res, err := experiments.RunFigure2(cfg)
		if err != nil {
			return err
		}
		res.Write(os.Stdout)
		var rows []textplot.Boxplot
		for _, r := range res.Rows {
			if r.Panel == "precision" || r.Panel == "predicates" {
				rows = append(rows, textplot.Boxplot{
					Label: fmt.Sprintf("%s (%dq)", r.Label, r.Qubits),
					Min:   r.Depths.Min, Q1: r.Depths.Q1, Median: r.Depths.Median,
					Q3: r.Depths.Q3, Max: r.Depths.Max,
				})
			}
		}
		fmt.Println()
		textplot.RenderBoxplots(os.Stdout, "circuit depth distributions (Falcon 27):", rows, 64)
		return nil
	})
	step("table2", func() error {
		res, err := experiments.RunTable2(cfg)
		if err != nil {
			return err
		}
		res.Write(os.Stdout)
		return nil
	})
	step("timing", func() error {
		res, err := experiments.RunTiming(cfg)
		if err != nil {
			return err
		}
		res.Write(os.Stdout)
		return nil
	})
	step("figure3", func() error {
		res, err := experiments.RunFigure3(cfg)
		if err != nil {
			return err
		}
		res.Write(os.Stdout)
		bySeries := map[string]*textplot.Series{}
		var order []string
		for _, r := range res.Rows {
			if r.Panel != "relations" || !r.OK {
				continue
			}
			key := r.Graph.String()
			s, ok := bySeries[key]
			if !ok {
				s = &textplot.Series{Label: key}
				bySeries[key] = s
				order = append(order, key)
			}
			s.X = append(s.X, float64(r.Relations))
			s.Y = append(s.Y, float64(r.PhysicalQubits))
		}
		var series []textplot.Series
		for _, k := range order {
			series = append(series, *bySeries[k])
		}
		fmt.Println()
		textplot.RenderLines(os.Stdout, "physical qubits vs relations (Pegasus embedding):", series, 60, 14, false)
		return nil
	})
	step("table3", func() error {
		res, err := experiments.RunTable3(cfg)
		if err != nil {
			return err
		}
		res.Write(os.Stdout)
		return nil
	})
	step("figure4", func() error {
		res, err := experiments.RunFigure4(cfg)
		if err != nil {
			return err
		}
		res.Write(os.Stdout)
		var series []textplot.Series
		for _, r := range []int{1, 5, 20} {
			s := textplot.Series{Label: fmt.Sprintf("R=%d", r)}
			for _, row := range res.Rows {
				if row.Thresholds == r && row.Decimals == 2 {
					s.X = append(s.X, float64(row.Relations))
					s.Y = append(s.Y, float64(row.Bound))
				}
			}
			series = append(series, s)
		}
		fmt.Println()
		textplot.RenderLines(os.Stdout, "qubit bound vs relations (ω=0.01, log scale):", series, 60, 14, true)
		return nil
	})
	step("figure5", func() error {
		res, err := experiments.RunFigure5(cfg)
		if err != nil {
			return err
		}
		res.Write(os.Stdout)
		n := cfg.CoDesignRelations[len(cfg.CoDesignRelations)-1]
		var series []textplot.Series
		for _, d := range cfg.CoDesignDensities {
			s := textplot.Series{Label: fmt.Sprintf("d=%.2f", d)}
			for _, row := range res.Rows {
				if row.Platform == "ibm" && row.Density == d &&
					row.GateSet == transpile.IBMNative && row.Router == transpile.RouterLookahead {
					s.X = append(s.X, float64(row.Relations))
					s.Y = append(s.Y, row.Median)
				}
			}
			if len(s.X) > 0 {
				series = append(series, s)
			}
		}
		fmt.Println()
		textplot.RenderLines(os.Stdout,
			fmt.Sprintf("IBM heavy-hex: depth vs relations by density (≤%d relations, log scale):", n),
			series, 60, 14, true)
		return nil
	})
	step("generations", func() error {
		res, err := experiments.RunGenerations(cfg)
		if err != nil {
			return err
		}
		res.Write(os.Stdout)
		return nil
	})
	step("ablation", func() error {
		res, err := experiments.RunAblation(cfg)
		if err != nil {
			return err
		}
		res.Write(os.Stdout)
		return nil
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched -run=%q\n", *run)
		os.Exit(2)
	}
	if *timings != "" {
		buf, err := json.MarshalIndent(allTimings, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "timings: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*timings, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "timings: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("per-stage timings written to %s\n", *timings)
	}
}
