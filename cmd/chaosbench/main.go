// Command chaosbench measures qjoind's resilience under injected QPU
// faults. For each point on a failure-rate ladder it assembles the full
// service (registry → fault injector → retries → circuit breaker → worker
// pool → HTTP handler), replays a deterministic seeded request schedule
// against the HTTP stack, and records availability, degradation, and
// plan-quality outcomes. The emitted BENCH_faults.json holds the
// availability and plan-cost-ratio curves vs injected failure rate — the
// quantitative form of the paper's §8 argument that a cloud-accessed QPU
// must be treated as an unreliable co-processor.
//
// The fault schedule is a pure function of -seed: two runs with the same
// flags see identical rejections, aborts, and corruptions, so a regression
// in the resilience stack shows up as a diff, not as noise.
//
// With -cluster the tool additionally boots an in-process three-node
// fleet (replica factor 2, hedged forwarding, a seeded faulty
// interconnect dropping and resetting -net-fault-rate of inter-node
// calls), drives the schedule at one node while another is killed at one
// third of the run and a third gracefully drained at two thirds, and
// gates the result: availability at least -min-availability (2xx
// fraction), zero 5xx, drain completed, p99 within -max-p99 when set.
// The -rates ladder may be empty ("") when -cluster is the only mode
// wanted; gate violations exit 1.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"quantumjoin/internal/faults"
	"quantumjoin/internal/hybrid"
	"quantumjoin/internal/join"
	"quantumjoin/internal/noise"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/service"
)

// RatePoint is one cell of the resilience curve: outcomes of the request
// schedule at one injected failure rate.
type RatePoint struct {
	FaultRate    float64 `json:"fault_rate"`
	Requests     int     `json:"requests"`
	HTTP200      int     `json:"http_200"`
	HTTP503      int     `json:"http_503"`
	HTTP5xx      int     `json:"http_5xx"`
	OtherStatus  int     `json:"other_status"`
	Availability float64 `json:"availability"` // HTTP 200 fraction
	InvalidPlans int     `json:"invalid_plans"`
	Degraded     int     `json:"degraded"`
	// Counters pulled from /metrics.json after the run.
	Retries      int64 `json:"retries"`
	Faults       int64 `json:"faults"`
	BreakerTrips int64 `json:"breaker_trips"`
	Shed         int64 `json:"shed"`
	// Plan quality over the HTTP 200 responses, as cost / DP optimum.
	MeanCostRatio  float64 `json:"mean_cost_ratio"`
	WorstCostRatio float64 `json:"worst_cost_ratio"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
}

// Report is the emitted JSON document.
type Report struct {
	GoMaxProcs  int           `json:"go_max_procs"`
	GoVersion   string        `json:"go_version"`
	Backend     string        `json:"backend"`
	Relations   int           `json:"relations"`
	Requests    int           `json:"requests"`
	Concurrency int           `json:"concurrency"`
	DeadlineMs  int           `json:"deadline_ms"`
	Seed        int64         `json:"seed"`
	Points      []RatePoint   `json:"points,omitempty"`
	Cluster     *ClusterPoint `json:"cluster,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_faults.json", "output file")
	backend := flag.String("backend", "dp", "backend to wrap with the fault injector")
	relations := flag.Int("relations", 8, "relations per generated query")
	requests := flag.Int("requests", 200, "requests per failure-rate point")
	concurrency := flag.Int("c", 8, "concurrent clients")
	deadline := flag.Duration("deadline", 250*time.Millisecond, "per-request deadline")
	seed := flag.Int64("seed", 1, "seed for queries and the fault schedule")
	ratesFlag := flag.String("rates", "0,0.1,0.2,0.3,0.5", "comma-separated injected failure rates (empty skips the ladder, valid only with -cluster)")
	clusterMode := flag.Bool("cluster", false, "also run the three-node fleet chaos point: kill + drain + faulty interconnect under load")
	netFaultRate := flag.Float64("net-fault-rate", 0.1, "cluster: fraction of inter-node calls that drop (hang) or reset, split evenly")
	minAvailability := flag.Float64("min-availability", 0.999, "cluster: fail unless at least this fraction of requests got 2xx")
	maxP99 := flag.Float64("max-p99", 0, "cluster: fail if the p99 latency exceeds this many milliseconds (0 disables)")
	flag.Parse()

	var rates []float64
	var err error
	if strings.TrimSpace(*ratesFlag) != "" {
		rates, err = parseRates(*ratesFlag)
		if err != nil {
			fail(err)
		}
	} else if !*clusterMode {
		fail(fmt.Errorf("chaosbench: no failure rates given (empty -rates requires -cluster)"))
	}
	queries, err := makeQueries(*relations, *seed)
	if err != nil {
		fail(err)
	}

	report := Report{
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		Backend:     *backend,
		Relations:   *relations,
		Requests:    *requests,
		Concurrency: *concurrency,
		DeadlineMs:  int(*deadline / time.Millisecond),
		Seed:        *seed,
	}
	for _, rate := range rates {
		point, err := runPoint(*backend, queries, rate, *requests, *concurrency, *deadline, *seed)
		if err != nil {
			fail(err)
		}
		report.Points = append(report.Points, point)
		fmt.Printf("rate %.2f: availability %.3f (%d/%d 200s, %d 503s, %d 5xx), %d degraded, cost ratio %.3f, p95 %.1fms\n",
			rate, point.Availability, point.HTTP200, point.Requests, point.HTTP503, point.HTTP5xx,
			point.Degraded, point.MeanCostRatio, point.P95Ms)
	}

	gatesFailed := false
	if *clusterMode {
		point, err := runCluster(*backend, queries, *requests, *concurrency, *deadline, *seed, *netFaultRate, *minAvailability, *maxP99)
		if err != nil {
			fail(err)
		}
		report.Cluster = point
		fmt.Printf("cluster: availability %.4f (%d/%d 2xx, %d 5xx, %d transport), p99 %.1fms, hedges %d (won %d), forwards %d, warm pushes %d, drain ok %v -> pass %v\n",
			point.Availability, point.HTTP2xx, point.Requests, point.HTTP5xx, point.Transport,
			point.P99Ms, point.Hedges, point.HedgeWins, point.Forwards, point.WarmPushes, point.DrainOK, point.Pass)
		if !point.Pass {
			gatesFailed = true
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
	if gatesFailed {
		fail(fmt.Errorf("chaosbench: cluster gates failed (availability %.4f >= %.4f? 5xx=%d, drain ok %v, p99 %.1fms)",
			report.Cluster.Availability, *minAvailability, report.Cluster.HTTP5xx, report.Cluster.DrainOK, report.Cluster.P99Ms))
	}
}

// runPoint assembles a fresh resilient service, fires the seeded request
// schedule at it over HTTP, and folds the outcomes into one RatePoint.
func runPoint(backend string, queries []json.RawMessage, rate float64, requests, concurrency int, deadline time.Duration, seed int64) (RatePoint, error) {
	reg := service.DefaultRegistry(service.RegistryConfig{PegasusM: 3})
	svc := service.New(reg, service.Config{
		Workers:        concurrency,
		QueueDepth:     2 * concurrency,
		DefaultBackend: backend,
		Shed:           true,
		Degrade:        true,
	})

	be, ok := reg.Get(backend)
	if !ok {
		return RatePoint{}, fmt.Errorf("chaosbench: unknown backend %q", backend)
	}
	be = faults.Inject(be, faults.InjectorConfig{
		RejectProb:  rate / 3,
		AbortProb:   rate / 3,
		CorruptProb: rate / 3,
		Access:      noise.AccessModel{QueueWaitNs: float64(2 * time.Millisecond)},
		Seed:        seed,
		Metrics:     svc.Metrics(),
	})
	be = faults.WithRetry(be, faults.RetryPolicy{Seed: seed, Metrics: svc.Metrics()})
	be = faults.WithBreaker(be, faults.BreakerConfig{OpenFor: 100 * time.Millisecond})
	if err := reg.Replace(be); err != nil {
		return RatePoint{}, err
	}
	hb, err := hybrid.New(hybrid.Config{Registry: reg, Metrics: svc.Metrics()})
	if err != nil {
		return RatePoint{}, err
	}
	if err := reg.Register(hb); err != nil {
		return RatePoint{}, err
	}

	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	}()
	client := &http.Client{Timeout: deadline + 5*time.Second}

	var (
		mu        sync.Mutex
		point     = RatePoint{FaultRate: rate, Requests: requests, WorstCostRatio: 1}
		latencies []float64
		ratios    []float64
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				status, resp, elapsed, err := fire(client, srv.URL, queries[i%len(queries)], deadline, seed+int64(i))
				mu.Lock()
				if err != nil {
					point.OtherStatus++
					mu.Unlock()
					continue
				}
				latencies = append(latencies, float64(elapsed)/float64(time.Millisecond))
				switch {
				case status == http.StatusOK:
					point.HTTP200++
					if resp.Degraded {
						point.Degraded++
					}
					if !validPlan(resp) {
						point.InvalidPlans++
					}
					if resp.OptimalCost > 0 && resp.Cost > 0 {
						ratios = append(ratios, resp.Cost/resp.OptimalCost)
					}
				case status == http.StatusServiceUnavailable:
					point.HTTP503++
				case status >= 500:
					point.HTTP5xx++
				default:
					point.OtherStatus++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	point.Availability = float64(point.HTTP200) / float64(requests)
	if len(ratios) > 0 {
		sum := 0.0
		for _, r := range ratios {
			sum += r
			if r > point.WorstCostRatio {
				point.WorstCostRatio = r
			}
		}
		point.MeanCostRatio = sum / float64(len(ratios))
	}
	point.P50Ms = percentile(latencies, 0.50)
	point.P95Ms = percentile(latencies, 0.95)

	// Server-side counters: retries, injected faults, sheds, and breaker
	// trips, scraped from /metrics.json like an operator would.
	var snap service.Snapshot
	if err := getJSON(client, srv.URL+"/metrics.json", &snap); err != nil {
		return RatePoint{}, err
	}
	point.Shed = snap.Requests.Shed
	for _, b := range snap.Backends {
		point.Retries += b.Retries
		point.Faults += b.Faults
		if b.Breaker != nil {
			point.BreakerTrips += b.Breaker.Trips
		}
	}
	return point, nil
}

// fire posts one optimisation request and decodes the response.
func fire(client *http.Client, baseURL string, query json.RawMessage, deadline time.Duration, seed int64) (int, *service.OptimizeResponse, time.Duration, error) {
	body, err := json.Marshal(service.OptimizeRequest{
		Query:     query,
		Seed:      seed,
		TimeoutMs: int(deadline / time.Millisecond),
	})
	if err != nil {
		return 0, nil, 0, err
	}
	start := time.Now()
	httpResp, err := client.Post(baseURL+"/v1/optimize", "application/json", bytes.NewReader(body))
	elapsed := time.Since(start)
	if err != nil {
		return 0, nil, elapsed, err
	}
	defer httpResp.Body.Close()
	var resp service.OptimizeResponse
	if httpResp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			return httpResp.StatusCode, nil, elapsed, err
		}
	}
	return httpResp.StatusCode, &resp, elapsed, nil
}

// validPlan checks the response order is a permutation of the query's
// relations — the "zero invalid plans" availability criterion.
func validPlan(resp *service.OptimizeResponse) bool {
	seen := make(map[string]bool, len(resp.Order))
	for _, name := range resp.Order {
		if seen[name] {
			return false
		}
		seen[name] = true
	}
	return len(resp.Order) > 0
}

// makeQueries generates a deterministic mixed-shape query workload,
// serialised to the HTTP catalog schema.
func makeQueries(relations int, seed int64) ([]json.RawMessage, error) {
	shapes := []querygen.GraphType{querygen.Chain, querygen.Star, querygen.Clique, querygen.Cycle}
	rng := rand.New(rand.NewSource(seed))
	var out []json.RawMessage
	for i := 0; i < 8; i++ {
		q, err := querygen.Generate(querygen.Config{Relations: relations, Graph: shapes[i%len(shapes)]}, rng)
		if err != nil {
			return nil, err
		}
		raw, err := catalogJSON(q)
		if err != nil {
			return nil, err
		}
		out = append(out, raw)
	}
	return out, nil
}

// catalogJSON serialises a query into the join catalog schema the HTTP
// endpoint decodes with join.ReadCatalog.
func catalogJSON(q *join.Query) (json.RawMessage, error) {
	type rel struct {
		Name string  `json:"name"`
		Card float64 `json:"cardinality"`
	}
	type pred struct {
		Left  string  `json:"left"`
		Right string  `json:"right"`
		Sel   float64 `json:"selectivity"`
	}
	doc := struct {
		Relations  []rel  `json:"relations"`
		Predicates []pred `json:"predicates"`
	}{}
	for i, r := range q.Relations {
		name := r.Name
		if name == "" {
			name = "R" + strconv.Itoa(i)
		}
		doc.Relations = append(doc.Relations, rel{Name: name, Card: r.Card})
	}
	for _, p := range q.Predicates {
		doc.Predicates = append(doc.Predicates, pred{
			Left:  doc.Relations[p.R1].Name,
			Right: doc.Relations[p.R2].Name,
			Sel:   p.Sel,
		})
	}
	return json.Marshal(doc)
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r < 0 || r > 1 {
			return nil, fmt.Errorf("chaosbench: bad rate %q (want 0..1)", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaosbench: no failure rates given")
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
