package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"quantumjoin/internal/cluster"
	"quantumjoin/internal/faults"
	"quantumjoin/internal/service"
)

// ClusterPoint is the -cluster section of the report: one seeded fleet
// chaos run — three nodes under load from one client-facing node, with a
// mid-run kill, a mid-run graceful drain, and a faulty interconnect — and
// the availability that survived it.
type ClusterPoint struct {
	Nodes        int     `json:"nodes"`
	Replicas     int     `json:"replicas"`
	HedgeAfterMs float64 `json:"hedge_after_ms"`
	NetFaultRate float64 `json:"net_fault_rate"`
	Requests     int     `json:"requests"`
	HTTP2xx      int     `json:"http_2xx"`
	HTTP4xx      int     `json:"http_4xx"`
	HTTP5xx      int     `json:"http_5xx"`
	Transport    int     `json:"transport_errors"`
	Availability float64 `json:"availability"` // 2xx fraction
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	KilledAt     int     `json:"killed_at"`  // request index when node 1 was killed
	DrainedAt    int     `json:"drained_at"` // request index when node 2 began draining
	DrainOK      bool    `json:"drain_ok"`
	// Routing counters summed over the fleet after the run.
	Forwards      int64 `json:"forwards"`
	ForwardErrors int64 `json:"forward_errors"`
	Hedges        int64 `json:"hedges"`
	HedgeWins     int64 `json:"hedge_wins"`
	WarmPushes    int64 `json:"warm_pushes"`
	WarmsReceived int64 `json:"warms_received"`
	// Gates.
	MinAvailability float64 `json:"min_availability"`
	MaxP99Ms        float64 `json:"max_p99_ms,omitempty"`
	Pass            bool    `json:"pass"`
}

// clusterNode bundles one fleet member's moving parts for teardown.
type clusterNode struct {
	svc  *service.Service
	node *cluster.Node
	srv  *http.Server
	ln   net.Listener
}

// runCluster boots an in-process three-node fleet with replicated
// ownership, hedged forwarding, and a seeded faulty interconnect, then
// drives the full request schedule at node 0 while node 1 is killed
// (listener closed, no warning) at one third of the schedule and node 2
// is gracefully drained at two thirds. The run gates on availability:
// the client must keep seeing 2xx answers — hedges absorbing the kill,
// the drain handing off cleanly — despite a third of the fleet dying and
// another third leaving mid-run.
func runCluster(backend string, queries []json.RawMessage, requests, concurrency int, deadline time.Duration, seed int64, netFaultRate, minAvailability, maxP99 float64) (*ClusterPoint, error) {
	const nNodes = 3
	hedgeAfter := 25 * time.Millisecond

	// Listeners first: every node needs the full peer URL list up front.
	urls := make([]string, nNodes)
	lns := make([]net.Listener, nNodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("chaosbench: listen: %w", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}

	nodes := make([]*clusterNode, nNodes)
	for i := range nodes {
		reg := service.DefaultRegistry(service.RegistryConfig{PegasusM: 3})
		svc := service.New(reg, service.Config{
			Workers:        concurrency,
			QueueDepth:     4 * concurrency,
			DefaultBackend: backend,
			Degrade:        true,
		})
		// Every forward, warm push, and leave announcement crosses the
		// seeded faulty interconnect; gossip probes use a clean client so
		// the health view degrades only from real (injected) data-path
		// failures.
		transport := faults.NewFaultyTransport(nil, faults.NetworkConfig{
			DropProb:    netFaultRate / 2,
			ResetProb:   netFaultRate / 2,
			DropTimeout: deadline,
			Self:        urls[i],
			Seed:        seed + int64(i),
		})
		node, err := cluster.NewNode(service.NewHandler(svc), cluster.NodeConfig{
			Self:       urls[i],
			Peers:      urls,
			Replicas:   2,
			HedgeAfter: hedgeAfter,
			Client:     &http.Client{Transport: transport},
			Gossip: cluster.GossipConfig{
				Interval:  50 * time.Millisecond,
				Timeout:   time.Second,
				DownAfter: 2,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("chaosbench: node %d: %w", i, err)
		}
		node.Start()
		srv := &http.Server{Handler: node}
		go func() { _ = srv.Serve(lns[i]) }()
		nodes[i] = &clusterNode{svc: svc, node: node, srv: srv, ln: lns[i]}
	}
	defer func() {
		for _, n := range nodes {
			n.node.Stop()
			_ = n.srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = n.svc.Close(ctx)
			cancel()
		}
	}()

	point := &ClusterPoint{
		Nodes:           nNodes,
		Replicas:        2,
		HedgeAfterMs:    float64(hedgeAfter) / float64(time.Millisecond),
		NetFaultRate:    netFaultRate,
		Requests:        requests,
		KilledAt:        requests / 3,
		DrainedAt:       2 * requests / 3,
		DrainOK:         true,
		MinAvailability: minAvailability,
		MaxP99Ms:        maxP99,
	}

	client := &http.Client{Timeout: deadline + 5*time.Second}
	var (
		mu        sync.Mutex
		latencies []float64
		drainWG   sync.WaitGroup
		drainErr  error
	)
	kill := func() {
		// An abrupt loss: the listener closes with no goodbye; in-flight
		// forwards to it fail at the transport and must fail over.
		_ = nodes[1].srv.Close()
	}
	drain := func() {
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			err := nodes[2].node.Drain(ctx)
			_ = nodes[2].srv.Close()
			mu.Lock()
			drainErr = err
			mu.Unlock()
		}()
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				status, _, elapsed, err := fire(client, urls[0], queries[i%len(queries)], deadline, seed+int64(i))
				mu.Lock()
				switch {
				case err != nil:
					point.Transport++
				case status >= 500:
					point.HTTP5xx++
				case status >= 400:
					point.HTTP4xx++
				case status >= 200 && status < 300:
					point.HTTP2xx++
				}
				if err == nil {
					latencies = append(latencies, float64(elapsed)/float64(time.Millisecond))
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < requests; i++ {
		if i == point.KilledAt {
			kill()
		}
		if i == point.DrainedAt {
			drain()
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	drainWG.Wait()

	point.Availability = float64(point.HTTP2xx) / float64(requests)
	point.P50Ms = percentile(latencies, 0.50)
	point.P99Ms = percentile(latencies, 0.99)
	if drainErr != nil {
		point.DrainOK = false
	}
	for _, n := range nodes {
		c := n.node.Counters()
		point.Forwards += c.Forwards
		point.ForwardErrors += c.ForwardErrors
		point.Hedges += c.Hedges
		point.HedgeWins += c.HedgeWins
		point.WarmPushes += c.WarmPushes
		point.WarmsReceived += c.WarmsReceived
	}

	point.Pass = point.Availability >= minAvailability &&
		point.HTTP5xx == 0 &&
		point.DrainOK &&
		(maxP99 <= 0 || point.P99Ms <= maxP99)
	return point, nil
}
