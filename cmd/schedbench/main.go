// Command schedbench measures the learned router's decision quality
// against the always-race baseline on the shared deadline-stratified
// workload (querygen.DeadlineStratified). Results go to a JSON file
// (default BENCH_sched.json).
//
// Method: every (item, arm) pair is solved ONCE against the real backend
// under the item's deadline, producing an oracle table of (cost, valid,
// elapsed) outcomes. Both policies are then replayed over that table —
// the baseline invokes every arm on every request; the learned router
// invokes only its decision's arms, feeding each arm's measured outcome
// back as its reward. Replaying the same table keeps the comparison
// apples-to-apples (identical solver outcomes for both policies) and
// makes the routing layer's determinism checkable: two replays with the
// same seed must produce bit-identical router states.
//
// The bench reports the plan-cost ratio (learned cost / always-race cost,
// ≥ 1 by construction since the learned arm set is a subset), the backend
// invocations saved, per-class and per-epoch breakdowns, mean regret
// versus the DP optimum, and the results of the determinism and
// persistence round-trip checks. -smoke shrinks the workload for CI;
// -max-cost-ratio and -min-saving turn the headline numbers into gates.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/core"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/sched"
	"quantumjoin/internal/service"
)

// armOutcome is one measured (item, arm) solve.
type armOutcome struct {
	Cost    float64 `json:"cost"`
	Valid   bool    `json:"valid"`
	Elapsed float64 `json:"elapsed_ms"`

	elapsed time.Duration
}

// oracleItem is one workload item plus its measured per-arm outcomes.
type oracleItem struct {
	item querygen.WorkloadItem
	opt  float64
	arms map[string]armOutcome
}

// policyStats aggregates one routing policy's replay over the oracle.
type policyStats struct {
	Requests    int     `json:"requests"`
	Invocations int     `json:"invocations"`
	MeanCostOpt float64 `json:"mean_cost_vs_optimal"`
	MeanRegret  float64 `json:"mean_regret"` // mean(cost/optimal - 1)

	costSum   float64 // Σ cost_i / opt_i
	perItem   []float64
	perClass  map[string]*classAgg
	direct    int
	decisions int
}

type classAgg struct {
	Requests    int     `json:"requests"`
	Invocations int     `json:"invocations"`
	CostRatio   float64 `json:"cost_ratio"` // learned/baseline, filled at comparison time
	Direct      int     `json:"direct,omitempty"`

	ratioSum float64
}

// epochStats is one learned epoch's summary.
type epochStats struct {
	Epoch       int     `json:"epoch"`
	Invocations int     `json:"invocations"`
	Direct      int     `json:"direct"`
	Raced       int     `json:"raced"`
	CostRatio   float64 `json:"cost_ratio"`
}

// Report is the emitted JSON document.
type Report struct {
	GoVersion string   `json:"go_version"`
	NumCPU    int      `json:"num_cpu"`
	Arms      []string `json:"arms"`
	Floor     string   `json:"floor"`
	Relations int      `json:"relations"`
	PerCell   int      `json:"per_cell"`
	Epochs    int      `json:"epochs"`
	Seed      int64    `json:"seed"`
	Items     int      `json:"items"`

	Baseline policyStats `json:"baseline"` // always-race, cost arbitration
	Learned  policyStats `json:"learned"`

	CostRatio        float64              `json:"cost_ratio"`        // learned cost / baseline cost
	InvocationSaving float64              `json:"invocation_saving"` // 1 - learned/baseline invocations
	DirectFraction   float64              `json:"direct_fraction"`
	PerClass         map[string]*classAgg `json:"per_class"`
	EpochCurve       []epochStats         `json:"epoch_curve"`
	ArmPulls         map[string]int64     `json:"arm_pulls"`
	ArmMeanReward    map[string]float64   `json:"arm_mean_reward"`

	Deterministic        bool `json:"deterministic"`
	PersistenceRoundTrip bool `json:"persistence_round_trip"`
}

func main() {
	out := flag.String("o", "BENCH_sched.json", "output file")
	relations := flag.Int("relations", 8, "relations per generated query")
	perCell := flag.Int("per-cell", 2, "instances per (shape, skew, deadline) workload cell")
	epochs := flag.Int("epochs", 4, "learned-policy passes over the workload")
	reads := flag.Int("reads", 16, "sampler reads per quantum-simulated solve")
	seed := flag.Int64("seed", 1, "workload and router seed")
	alpha := flag.Float64("alpha", 0, "router exploration width (0 = sched default)")
	minPulls := flag.Int("min-pulls", 0, "router cold-start quota (0 = sched default)")
	latencyWeight := flag.Float64("latency-weight", 0, "router latency penalty (0 = sched default)")
	smoke := flag.Bool("smoke", false, "CI mode: per-cell 1, reads 8, fail on check regressions")
	maxCostRatio := flag.Float64("max-cost-ratio", 0, "fail when learned/baseline cost ratio exceeds this (0 = no gate)")
	minSaving := flag.Float64("min-saving", 0, "fail when invocation saving falls below this (0 = no gate)")
	flag.Parse()

	if *smoke {
		*perCell = 1
		*reads = 8
	}

	items, err := querygen.DeadlineStratified(querygen.WorkloadConfig{
		Relations: *relations,
		PerCell:   *perCell,
		Seed:      *seed,
	})
	if err != nil {
		fail(err)
	}

	reg := service.NewRegistry()
	for _, b := range []service.Backend{
		service.NewGreedyBackend(),
		service.NewDPBackend(),
		service.NewTabuBackend(),
		service.NewAnnealBackend(2),
	} {
		if err := reg.Register(b); err != nil {
			fail(err)
		}
	}
	armSet := []string{"dp", "tabu", "anneal", "greedy"}

	rep := Report{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Arms:      armSet,
		Floor:     "greedy",
		Relations: *relations,
		PerCell:   *perCell,
		Epochs:    *epochs,
		Seed:      *seed,
		Items:     len(items),
	}

	fmt.Printf("measuring %d items x %d arms...\n", len(items), len(armSet))
	oracle := measure(reg, items, armSet, *reads)

	routerCfg := sched.Config{
		Arms:          []string{"dp", "tabu", "anneal"},
		Floor:         "greedy",
		Alpha:         *alpha,
		MinPulls:      *minPulls,
		LatencyWeight: *latencyWeight,
		Seed:          *seed,
	}

	rep.Baseline = replayBaseline(oracle, armSet, *epochs)

	router := newRouter(routerCfg)
	rep.Learned, rep.EpochCurve = replayLearned(router, oracle, *epochs)

	// Determinism: a second replay with a fresh identically-seeded router
	// must produce the identical model state and identical totals.
	router2 := newRouter(routerCfg)
	learned2, _ := replayLearned(router2, oracle, *epochs)
	rep.Deterministic = statesEqual(router, router2) &&
		rep.Learned.Invocations == learned2.Invocations &&
		rep.Learned.costSum == learned2.costSum

	// Persistence: save -> load -> export must be bit-identical.
	rep.PersistenceRoundTrip = roundTrip(router, routerCfg)

	// Headline comparison.
	rep.CostRatio = ratioOf(rep.Learned.perItem, rep.Baseline.perItem)
	if rep.Baseline.Invocations > 0 {
		rep.InvocationSaving = 1 - float64(rep.Learned.Invocations)/float64(rep.Baseline.Invocations)
	}
	if rep.Learned.decisions > 0 {
		rep.DirectFraction = float64(rep.Learned.direct) / float64(rep.Learned.decisions)
	}
	rep.PerClass = comparePerClass(rep.Learned.perClass, rep.Baseline.perClass)

	snap := router.Snapshot()
	rep.ArmPulls = map[string]int64{}
	rep.ArmMeanReward = map[string]float64{}
	for name, m := range snap.Models {
		rep.ArmPulls[name] = m.Pulls
		rep.ArmMeanReward[name] = m.MeanReward
	}

	fmt.Printf("baseline: %d invocations, mean cost/opt %.4f\n",
		rep.Baseline.Invocations, rep.Baseline.MeanCostOpt)
	fmt.Printf("learned:  %d invocations, mean cost/opt %.4f, direct %.0f%%\n",
		rep.Learned.Invocations, rep.Learned.MeanCostOpt, 100*rep.DirectFraction)
	fmt.Printf("cost ratio %.4f, invocation saving %.1f%%, deterministic=%v, round-trip=%v\n",
		rep.CostRatio, 100*rep.InvocationSaving, rep.Deterministic, rep.PersistenceRoundTrip)
	for _, e := range rep.EpochCurve {
		fmt.Printf("  epoch %d: %d invocations, %d direct / %d raced, cost ratio %.4f\n",
			e.Epoch, e.Invocations, e.Direct, e.Raced, e.CostRatio)
	}

	writeReport(*out, &rep)

	var failures []string
	if *maxCostRatio > 0 && rep.CostRatio > *maxCostRatio {
		failures = append(failures, fmt.Sprintf("cost ratio %.4f > gate %.4f", rep.CostRatio, *maxCostRatio))
	}
	if *minSaving > 0 && rep.InvocationSaving < *minSaving {
		failures = append(failures, fmt.Sprintf("invocation saving %.3f < gate %.3f", rep.InvocationSaving, *minSaving))
	}
	if *smoke && !rep.Deterministic {
		failures = append(failures, "learned replay is not deterministic under a fixed seed")
	}
	if *smoke && !rep.PersistenceRoundTrip {
		failures = append(failures, "router state save/load round trip is not bit-identical")
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "schedbench: GATE FAILED:", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

func newRouter(cfg sched.Config) *sched.Router {
	r, err := sched.NewRouter(cfg)
	if err != nil {
		fail(err)
	}
	return r
}

// measure solves every (item, arm) pair once under the item's deadline.
func measure(reg *service.Registry, items []querygen.WorkloadItem, armSet []string, reads int) []oracleItem {
	oracle := make([]oracleItem, 0, len(items))
	for _, it := range items {
		enc, err := core.Encode(it.Query, core.Options{Thresholds: core.DefaultThresholds(it.Query, 2)})
		if err != nil {
			fail(err)
		}
		opt, err := classical.OptimalCost(it.Query)
		if err != nil {
			fail(err)
		}
		oi := oracleItem{item: it, opt: opt, arms: make(map[string]armOutcome, len(armSet))}
		for _, arm := range armSet {
			be, ok := reg.Get(arm)
			if !ok {
				fail(fmt.Errorf("backend %q not registered", arm))
			}
			ctx, cancel := context.WithTimeout(context.Background(), it.Deadline)
			start := time.Now()
			d, err := be.Solve(ctx, enc, service.Params{Reads: reads, Seed: it.Seed})
			elapsed := time.Since(start)
			cancel()
			o := armOutcome{Elapsed: float64(elapsed) / float64(time.Millisecond), elapsed: elapsed}
			if err == nil && d != nil && d.Valid && d.Order.IsPermutation(it.Query.NumRelations()) {
				o.Valid = true
				o.Cost = it.Query.Cost(d.Order)
			}
			oi.arms[arm] = o
		}
		oracle = append(oracle, oi)
	}
	return oracle
}

// replayBaseline replays the always-race policy: every arm invoked on
// every request, cost arbitration over the valid outcomes. Repeated for
// the same number of epochs as the learned pass so totals compare over
// the identical request stream.
func replayBaseline(oracle []oracleItem, armSet []string, epochs int) policyStats {
	st := newPolicyStats()
	for e := 0; e < epochs; e++ {
		for _, oi := range oracle {
			cost := bestCost(oi, armSet)
			st.record(oi, cost, len(armSet))
		}
	}
	st.finish()
	return st
}

// replayLearned replays the learned policy with online updates: each
// decision invokes only its arms, and every invoked arm's measured
// outcome is fed back as a reward on the decision-time context.
func replayLearned(router *sched.Router, oracle []oracleItem, epochs int) (policyStats, []epochStats) {
	st := newPolicyStats()
	var curve []epochStats
	for e := 1; e <= epochs; e++ {
		ep := epochStats{Epoch: e}
		var ratioSum float64
		for _, oi := range oracle {
			d := router.Decide(oi.item.Query, sched.Context{Budget: oi.item.Deadline})
			cost := bestCost(oi, d.Arms)
			st.record(oi, cost, len(d.Arms))
			st.decisions++
			if d.Mode == sched.ModeDirect {
				st.direct++
				ep.Direct++
				st.perClass[oi.item.Class].Direct++
			} else {
				ep.Raced++
			}
			ep.Invocations += len(d.Arms)
			ratioSum += cost / bestCost(oi, router.Arms())
			for _, arm := range d.Arms {
				o := oi.arms[arm]
				if o.Valid {
					router.Update(&d, arm, router.Reward(cost, o.Cost, o.elapsed, oi.item.Deadline))
				} else {
					router.Update(&d, arm, 0)
				}
			}
		}
		ep.CostRatio = ratioSum / float64(len(oracle))
		curve = append(curve, ep)
	}
	st.finish()
	return st, curve
}

// bestCost is the cost arbitration over one item's invoked arm set: the
// cheapest valid plan. The greedy floor is always valid, so every request
// stream has an answer; math.Inf flags the (impossible) empty case.
func bestCost(oi oracleItem, arms []string) float64 {
	best := math.Inf(1)
	for _, arm := range arms {
		if o, ok := oi.arms[arm]; ok && o.Valid && o.Cost < best {
			best = o.Cost
		}
	}
	return best
}

func newPolicyStats() policyStats {
	return policyStats{perClass: map[string]*classAgg{
		querygen.ClassTight:  {},
		querygen.ClassMedium: {},
		querygen.ClassLoose:  {},
	}}
}

func (st *policyStats) record(oi oracleItem, cost float64, invocations int) {
	st.Requests++
	st.Invocations += invocations
	st.costSum += cost / oi.opt
	st.perItem = append(st.perItem, cost)
	ca := st.perClass[oi.item.Class]
	ca.Requests++
	ca.Invocations += invocations
	ca.ratioSum += cost / oi.opt
}

func (st *policyStats) finish() {
	if st.Requests > 0 {
		st.MeanCostOpt = st.costSum / float64(st.Requests)
		st.MeanRegret = st.MeanCostOpt - 1
	}
}

// ratioOf is the mean per-request cost ratio between two aligned replays.
func ratioOf(learned, baseline []float64) float64 {
	if len(learned) != len(baseline) || len(learned) == 0 {
		return math.NaN()
	}
	var sum float64
	for i := range learned {
		sum += learned[i] / baseline[i]
	}
	return sum / float64(len(learned))
}

func comparePerClass(learned, baseline map[string]*classAgg) map[string]*classAgg {
	out := make(map[string]*classAgg, len(learned))
	for class, la := range learned {
		ba := baseline[class]
		agg := &classAgg{Requests: la.Requests, Invocations: la.Invocations, Direct: la.Direct}
		if ba != nil && ba.ratioSum > 0 {
			agg.CostRatio = la.ratioSum / ba.ratioSum
		}
		out[class] = agg
	}
	return out
}

// statesEqual compares two routers' exported model state bit-for-bit.
func statesEqual(a, b *sched.Router) bool {
	ja, err := json.Marshal(a.ExportState())
	if err != nil {
		return false
	}
	jb, err := json.Marshal(b.ExportState())
	if err != nil {
		return false
	}
	return bytes.Equal(ja, jb)
}

// roundTrip checks save -> load -> export is bit-identical to the source.
func roundTrip(router *sched.Router, cfg sched.Config) bool {
	dir, err := os.MkdirTemp("", "schedbench-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sched.json")
	if err := router.SaveFile(path); err != nil {
		fail(err)
	}
	fresh := newRouter(cfg)
	if loaded, err := fresh.LoadFile(path); err != nil || !loaded {
		return false
	}
	return statesEqual(router, fresh)
}

func writeReport(path string, rep *Report) {
	// Stable key order inside the curve keeps diffs reviewable.
	sort.Slice(rep.EpochCurve, func(i, j int) bool { return rep.EpochCurve[i].Epoch < rep.EpochCurve[j].Epoch })
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedbench:", err)
	os.Exit(1)
}
