// Command obsbench measures the observability tax: the qjoind warm-path
// optimize round-trip (the BenchmarkServiceOptimize/warm-cache shape —
// cached QUBO encoding, cheap greedy backend, so per-request service
// overhead dominates) is benchmarked with tracing off, with a tracer at
// full sampling, and with the production default sample rate. The run
// fails (exit 1) when the fully-traced path exceeds -max-overhead over
// the untraced one, which is how CI pins the overhead budget documented
// in DESIGN.md.
//
// Results are written as JSON (-o, default BENCH_obs.json):
//
//	{
//	  "ns_per_op_off": ...,      // tracer disabled
//	  "ns_per_op_sampled": ...,  // SampleRate 0.05
//	  "ns_per_op_traced": ...,   // SampleRate 1, every span recorded
//	  "overhead_traced": 0.041,  // fraction over off
//	  "max_overhead": 0.10,
//	  "pass": true
//	}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"quantumjoin/internal/join"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// Result is the BENCH_obs.json schema.
type Result struct {
	Iterations      int     `json:"iterations"` // of the traced run
	NsPerOpOff      float64 `json:"ns_per_op_off"`
	NsPerOpSampled  float64 `json:"ns_per_op_sampled"`
	NsPerOpTraced   float64 `json:"ns_per_op_traced"`
	OverheadSampled float64 `json:"overhead_sampled"`
	OverheadTraced  float64 `json:"overhead_traced"`
	MaxOverhead     float64 `json:"max_overhead"`
	Pass            bool    `json:"pass"`
}

// median returns the middle value of xs (mean of the two middle values
// for even lengths). xs is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// chainQuery is the 7-relation chain BenchmarkServiceOptimize uses.
func chainQuery() *join.Query {
	const n = 7
	q := &join.Query{Relations: make([]join.Relation, n)}
	for i := range q.Relations {
		q.Relations[i] = join.Relation{Name: fmt.Sprintf("r%d", i), Card: float64(10 * (i + 1))}
		if i > 0 {
			q.Predicates = append(q.Predicates, join.Predicate{R1: i - 1, R2: i, Sel: 0.1})
		}
	}
	return q
}

// warmBench returns a benchmark over the warm optimize path with the
// given tracer (nil = tracing disabled).
func warmBench(tracer *obs.Tracer) (func(b *testing.B), func()) {
	reg := service.NewRegistry()
	if err := reg.Register(service.NewGreedyBackend()); err != nil {
		panic(err)
	}
	svc := service.New(reg, service.Config{Workers: 2, DefaultBackend: "greedy", Tracer: tracer})
	q := chainQuery()
	req := func() *service.Request {
		return &service.Request{Query: q, Spec: service.EncodeSpec{Thresholds: 3}}
	}
	if _, err := svc.Optimize(context.Background(), req()); err != nil {
		panic(err)
	}
	bench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svc.Optimize(context.Background(), req()); err != nil {
				b.Fatal(err)
			}
		}
	}
	return bench, func() { svc.Close(context.Background()) }
}

func main() {
	maxOverhead := flag.Float64("max-overhead", 0.10, "fail when the fully-traced warm path exceeds this fractional overhead")
	sampleRate := flag.Float64("sample-rate", 0.05, "production sample rate measured as the middle configuration")
	rounds := flag.Int("rounds", 5, "benchmark repetitions per configuration (fastest wins)")
	out := flag.String("o", "BENCH_obs.json", "result file")
	flag.Parse()

	// Measurement methodology: the host is noisy (shared CPU, frequency
	// drift, heap growth over the run), so absolute ns/op numbers from
	// back-to-back blocks are not comparable. Each round measures all
	// three configurations adjacently and the overhead estimate is the
	// median of the per-round paired ratios — drift moves both sides of a
	// ratio together and the median rejects outlier rounds. The starting
	// configuration rotates each round so no configuration systematically
	// enjoys the quietest (earliest) slot.
	configs := []struct {
		name   string
		tracer *obs.Tracer
	}{
		{"off", nil},
		{"sampled", obs.NewTracer(obs.Options{Capacity: 256, SampleRate: *sampleRate})},
		{"traced", obs.NewTracer(obs.Options{Capacity: 256, SampleRate: 1})},
	}
	iterations := make([]int, len(configs))
	benches := make([]func(b *testing.B), len(configs))
	for i, c := range configs {
		bench, closeSvc := warmBench(c.tracer)
		defer closeSvc()
		benches[i] = bench
	}
	perRound := make([][]float64, len(configs))
	for round := 0; round < *rounds; round++ {
		for k := range configs {
			i := (round + k) % len(configs)
			runtime.GC()
			r := testing.Benchmark(benches[i])
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			fmt.Fprintf(os.Stderr, "obsbench: round %d %-7s %.0f ns/op (%d iters)\n", round+1, configs[i].name, ns, r.N)
			perRound[i] = append(perRound[i], ns)
			iterations[i] = r.N
		}
	}
	ratios := func(i int) []float64 {
		rs := make([]float64, *rounds)
		for r := range rs {
			rs[r] = perRound[i][r] / perRound[0][r]
		}
		return rs
	}
	off := median(perRound[0])

	res := Result{
		Iterations:      iterations[2],
		NsPerOpOff:      off,
		NsPerOpSampled:  off * median(ratios(1)),
		NsPerOpTraced:   off * median(ratios(2)),
		OverheadSampled: median(ratios(1)) - 1,
		OverheadTraced:  median(ratios(2)) - 1,
		MaxOverhead:     *maxOverhead,
	}
	res.Pass = res.OverheadTraced <= *maxOverhead

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsbench:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "obsbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "obsbench: overhead traced %.1f%% / sampled %.1f%% (budget %.0f%%) -> %s\n",
		100*res.OverheadTraced, 100*res.OverheadSampled, 100**maxOverhead, *out)
	if !res.Pass {
		fmt.Fprintf(os.Stderr, "obsbench: FAIL: traced overhead %.1f%% exceeds budget %.0f%%\n",
			100*res.OverheadTraced, 100**maxOverhead)
		os.Exit(1)
	}
}
