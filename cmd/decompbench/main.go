// Command decompbench measures the decomposition backend against the
// classical baselines and the monolithic QUBO pipeline across 20–60
// relation chain, star, clique, and tree workloads. For each case it
// records the decomposed plan's true cost next to the greedy plan, the DP
// optimum (where the instance fits the DP limit), and the monolithic
// encoder's verdict — which above core.MaxMonolithicRelations is a hard
// rejection, the infeasibility decomposition exists to get past. A compact
// section pins the per-part encoding win: standard versus compact qubit
// counts with the MILP optima checked identical.
//
// Results go to a JSON file (default BENCH_decomp.json). With
// -max-dp-ratio > 0 the command exits non-zero when any decomp/DP cost
// ratio exceeds the bound (or a compact optimum diverges), which is how CI
// gates decomposition quality; -smoke shrinks the matrix for that gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/core"
	"quantumjoin/internal/decomp"
	"quantumjoin/internal/join"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/service"
)

// Case is one (graph, size, seed) comparison row.
type Case struct {
	Graph     string `json:"graph"`
	Relations int    `json:"relations"`
	Seed      int64  `json:"seed"`

	Parts         int     `json:"parts"`
	CutEdges      int     `json:"cut_edges"`
	LogicalQubits int     `json:"logical_qubits"`
	DecompCost    float64 `json:"decomp_cost"`
	DecompMs      float64 `json:"decomp_ms"`

	GreedyCost    float64 `json:"greedy_cost"`
	RatioVsGreedy float64 `json:"ratio_vs_greedy"`

	// DPCost and RatioVsDP are present only when the instance fits the DP
	// limit (classical.MaxDPRelations) and the -dp-limit budget.
	DPCost    float64 `json:"dp_cost,omitempty"`
	RatioVsDP float64 `json:"ratio_vs_dp,omitempty"`

	// MonolithicQubits is the one-shot QUBO size when the monolithic
	// encoder accepts the instance; MonolithicError is its rejection above
	// core.MaxMonolithicRelations.
	MonolithicQubits int    `json:"monolithic_qubits,omitempty"`
	MonolithicError  string `json:"monolithic_error,omitempty"`
}

// CompactCase compares the standard and compact encodings on one small
// instance where the MILP optimum is checkable.
type CompactCase struct {
	Graph             string `json:"graph"`
	Relations         int    `json:"relations"`
	StandardQubits    int    `json:"standard_qubits"`
	CompactQubits     int    `json:"compact_qubits"`
	SavedDecisionVars int    `json:"saved_decision_vars"`
	// OptimaMatch is true when both encodings' MILP optima agree on the
	// threshold-approximated objective (bit-identical optimum value).
	OptimaMatch bool `json:"optima_match"`
}

// Report is the emitted JSON document.
type Report struct {
	GoMaxProcs     int           `json:"go_max_procs"`
	NumCPU         int           `json:"num_cpu"`
	GoVersion      string        `json:"go_version"`
	PartBudget     int           `json:"part_budget"`
	Subsolver      string        `json:"subsolver"`
	Reads          int           `json:"reads"`
	MaxDPRelations int           `json:"max_dp_relations"`
	WorstDPRatio   float64       `json:"worst_dp_ratio"`
	Cases          []Case        `json:"cases"`
	Compact        []CompactCase `json:"compact"`
}

func main() {
	out := flag.String("o", "BENCH_decomp.json", "output file")
	samples := flag.Int("samples", 2, "seeds per (graph, size) point")
	reads := flag.Int("reads", 6, "sampling budget per part subsolve")
	budget := flag.Int("part-budget", 10, "relations per partition part")
	subsolver := flag.String("subsolver", "tabu", "named part subsolver (deterministic for a fixed seed)")
	dpLimit := flag.Int("dp-limit", 24, "largest instance to compute the DP optimum for (runtime guard; hard cap classical.MaxDPRelations)")
	maxDPRatio := flag.Float64("max-dp-ratio", 0, "exit non-zero when any decomp/DP cost ratio exceeds this (0 disables the gate)")
	smoke := flag.Bool("smoke", false, "shrink the matrix to a seconds-scale CI smoke run")
	flag.Parse()

	rep := Report{
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		GoVersion:      runtime.Version(),
		PartBudget:     *budget,
		Subsolver:      *subsolver,
		Reads:          *reads,
		MaxDPRelations: classical.MaxDPRelations,
	}

	reg := service.NewRegistry()
	for _, b := range []service.Backend{
		service.NewGreedyBackend(),
		service.NewDPBackend(),
		service.NewTabuBackend(),
	} {
		if err := reg.Register(b); err != nil {
			fail(err)
		}
	}
	db, err := decomp.New(decomp.Config{
		Registry:   reg,
		PartBudget: *budget,
		Subsolver:  *subsolver,
	})
	if err != nil {
		fail(err)
	}

	graphs := []struct {
		name string
		g    querygen.GraphType
	}{
		{"chain", querygen.Chain},
		{"star", querygen.Star},
		{"clique", querygen.Clique},
		{"tree", querygen.Tree},
	}
	sizes := []int{20, 24, 34, 40, 50, 60}
	compactSizes := []int{5, 7, 9}
	if *smoke {
		graphs = graphs[:2]
		sizes = []int{20, 40}
		compactSizes = []int{5}
		if *samples > 1 {
			*samples = 1
		}
	}

	for _, gr := range graphs {
		for _, n := range sizes {
			for s := 1; s <= *samples; s++ {
				c := runCase(db, gr.name, gr.g, n, int64(s), *dpLimit, *reads, *budget)
				rep.Cases = append(rep.Cases, c)
				if c.RatioVsDP > rep.WorstDPRatio {
					rep.WorstDPRatio = c.RatioVsDP
				}
				fmt.Printf("%-6s n=%2d seed=%d: parts %2d, qubits %4d, cost ratio greedy %.3f dp %.3f (%.0fms)\n",
					c.Graph, c.Relations, c.Seed, c.Parts, c.LogicalQubits,
					c.RatioVsGreedy, c.RatioVsDP, c.DecompMs)
			}
		}
	}

	compactOK := true
	for _, gr := range graphs {
		for _, n := range compactSizes {
			cc := compactCase(gr.name, gr.g, n)
			rep.Compact = append(rep.Compact, cc)
			compactOK = compactOK && cc.OptimaMatch
			fmt.Printf("compact %-6s n=%d: qubits %d -> %d (saved %d decision vars), optima match %v\n",
				cc.Graph, cc.Relations, cc.StandardQubits, cc.CompactQubits, cc.SavedDecisionVars, cc.OptimaMatch)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	encJSON := json.NewEncoder(f)
	encJSON.SetIndent("", "  ")
	if err := encJSON.Encode(rep); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (worst decomp/dp ratio %.3f)\n", *out, rep.WorstDPRatio)

	if *maxDPRatio > 0 {
		if rep.WorstDPRatio > *maxDPRatio {
			fail(fmt.Errorf("gate: worst decomp/dp cost ratio %.3f exceeds bound %.3f", rep.WorstDPRatio, *maxDPRatio))
		}
		if !compactOK {
			fail(fmt.Errorf("gate: compact encoding optimum diverged from standard"))
		}
	}
}

// instance generates one workload query with the paper-style integer-log
// parameters (greedy measurably suboptimal, DP gap visible).
func instance(g querygen.GraphType, n int, seed int64) *join.Query {
	q, err := querygen.Generate(querygen.Config{
		Relations:  n,
		Graph:      g,
		IntegerLog: true,
		MinLogCard: 1, MaxLogCard: 3,
		MinLogSel: 1, MaxLogSel: 2,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		fail(err)
	}
	return q
}

func runCase(db *decomp.Backend, name string, g querygen.GraphType, n int, seed int64, dpLimit, reads, budget int) Case {
	q := instance(g, n, seed)
	c := Case{Graph: name, Relations: n, Seed: seed}

	part, err := decomp.PartitionQuery(q, budget)
	if err == nil {
		c.Parts = len(part.Parts)
		c.CutEdges = part.CutEdges
	}

	start := time.Now()
	res, err := db.SolveQuery(context.Background(), q, service.EncodeSpec{}, service.Params{Reads: reads, Seed: seed})
	c.DecompMs = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		fail(fmt.Errorf("%s n=%d seed=%d: %w", name, n, seed, err))
	}
	if !res.Decoded.Order.IsPermutation(n) {
		fail(fmt.Errorf("%s n=%d seed=%d: decomposed order is not a permutation", name, n, seed))
	}
	c.DecompCost = res.Decoded.Cost
	c.LogicalQubits = res.LogicalQubits

	c.GreedyCost = classical.Greedy(q).Cost
	if c.GreedyCost > 0 {
		c.RatioVsGreedy = c.DecompCost / c.GreedyCost
	}
	if n <= dpLimit && n <= classical.MaxDPRelations {
		opt, err := classical.Optimal(q)
		if err != nil {
			fail(err)
		}
		c.DPCost = opt.Cost
		if opt.Cost > 0 {
			c.RatioVsDP = c.DecompCost / opt.Cost
		}
	}

	if enc, err := core.Encode(q, core.Options{Thresholds: core.DefaultThresholds(q, 3)}); err != nil {
		c.MonolithicError = err.Error()
	} else {
		c.MonolithicQubits = enc.NumQubits()
	}
	return c
}

// compactCase encodes one small instance both ways and solves both MILPs to
// the optimum; the threshold-approximated optimum values must be identical.
func compactCase(name string, g querygen.GraphType, n int) CompactCase {
	q := instance(g, n, int64(n))
	th := core.DefaultThresholds(q, 3)
	std, err := core.Encode(q, core.Options{Thresholds: th})
	if err != nil {
		fail(err)
	}
	cmp, err := core.Encode(q, core.Options{Thresholds: th, Compact: true})
	if err != nil {
		fail(err)
	}
	cc := CompactCase{
		Graph:             name,
		Relations:         n,
		StandardQubits:    std.NumQubits(),
		CompactQubits:     cmp.NumQubits(),
		SavedDecisionVars: std.NumDecisionVars() - cmp.NumDecisionVars(),
	}
	ds, err := std.SolveMILP()
	if err != nil {
		fail(err)
	}
	dc, err := cmp.SolveMILP()
	if err != nil {
		fail(err)
	}
	as, err := std.ApproxCost(ds.Order)
	if err != nil {
		fail(err)
	}
	ac, err := cmp.ApproxCost(dc.Order)
	if err != nil {
		fail(err)
	}
	cc.OptimaMatch = ds.Valid && dc.Valid && as == ac
	return cc
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "decompbench:", err)
	os.Exit(1)
}
