// Command qjoind serves join order optimisation over HTTP/JSON: queries
// are QUBO-encoded (with an LRU encoding cache keyed by a canonical hash
// of the query graph) and solved on a registered backend — the simulated
// quantum annealer, tabu search, QAOA simulation, the exact MILP solver,
// the classical DP/greedy baselines, the hybrid orchestrator (which
// races or stages the other backends under the request deadline and
// arbitrates by true plan cost), or the decomposition backend (which
// partitions join graphs past the monolithic encoding limit into
// QUBO-sized parts, solves each on the portfolio, and stitches the
// per-part orders classically) — under bounded concurrency and
// per-request deadlines.
//
// Endpoints:
//
//	POST /v1/optimize       — optimise one query (see README for the schema)
//	POST /v1/optimize/batch — optimise many queries in one envelope, with
//	                          deduplication and batched backend solves
//	GET  /v1/backends   — list registered backends
//	GET  /v1/sched      — learned-scheduler state: per-arm bandit models,
//	                      pull counts, decision counters (-sched-* flags)
//	GET  /v1/cluster    — cluster membership, peer health, routing counters
//	                      (only with -self/-peers)
//	GET  /metrics       — Prometheus text exposition of all counters,
//	                      latency histograms, cache and breaker state
//	GET  /metrics.json  — the same observability state as one JSON document
//	GET  /debug/traces  — recent request traces (?id=, ?format=flame)
//	GET  /debug/pprof/* — runtime profiles (only with -pprof)
//	GET  /healthz       — liveness probe with per-backend breaker health
//
// Every request is tagged with a request ID (inbound X-Request-ID or
// generated), echoed in the response header, stamped on every structured
// log line, and usable as /debug/traces?id= to pull the request's trace.
// The -trace-sample rate bounds tracing overhead; errored and slow
// requests are always traced regardless of the rate.
//
// The daemon treats solver backends as unreliable co-processors (the
// paper's §8 co-design argument): each backend named by -resilient-backends
// is wrapped with deadline-budgeted retries and a circuit breaker, the
// bounded request queue sheds load with 503 + Retry-After when saturated
// (-shed), and a failed solve degrades to the classical planner instead of
// erroring (-degrade), so /v1/optimize always answers with a valid join
// order. The -chaos-* flags inject a deterministic unreliable-QPU model
// (rejections, aborts, result corruption, queue waits, calibration
// blackouts) underneath the resilience stack for drills and benchmarks.
//
// With -self and -peers the daemon joins a static fleet: every node
// derives the same consistent-hash ring from the peer list, keyed by the
// permutation-invariant query fingerprint, so any node can forward a
// request to the node owning its encoding-cache entry (at most
// -forward-hops hops; X-Served-By names the solver). Concurrent identical
// requests coalesce into one solve, batch envelopes are split across
// owners, and peer health is polled over /healthz so traffic routes
// around down nodes.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops,
// queued requests drain, and in-flight solves finish (bounded by the
// shutdown grace period).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"quantumjoin/internal/cluster"
	"quantumjoin/internal/decomp"
	"quantumjoin/internal/faults"
	"quantumjoin/internal/hybrid"
	"quantumjoin/internal/noise"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/qsim"
	"quantumjoin/internal/sched"
	"quantumjoin/internal/service"
)

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "request queue depth (0 = 2x workers)")
	cacheSize := flag.Int("cache", 256, "encoding cache capacity (entries)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
	defaultBackend := flag.String("default-backend", "anneal", "backend used when a request names none")
	pegasusM := flag.Int("pegasus-m", 6, "annealer hardware graph size (16 = full Advantage)")
	qaoaQubits := flag.Int("qaoa-qubits", 16, "statevector budget of the qaoa backend")
	precision := flag.String("precision", "complex128", "qaoa statevector precision: complex64 (half the memory traffic) or complex128")
	hybridStrategy := flag.String("hybrid-strategy", "staged", "default hybrid strategy: race, staged, or learned")
	hybridPortfolio := flag.String("hybrid-portfolio", "anneal,tabu,qaoa", "default hybrid portfolio (comma-separated backend names)")
	hybridHedge := flag.Duration("hybrid-hedge", 25*time.Millisecond, "default hedge delay before the hybrid quantum stage")
	schedArms := flag.String("sched-arms", "dp,anneal,tabu,qaoa", "learned scheduler arm set (comma-separated backend names; greedy floor is always added)")
	schedState := flag.String("sched-state", "", "learned scheduler state file: loaded at boot, saved on shutdown (empty = in-memory only)")
	schedAlpha := flag.Float64("sched-alpha", 0, "learned scheduler exploration width (0 = library default)")
	schedMinPulls := flag.Int("sched-min-pulls", 0, "learned scheduler cold-start quota per arm (0 = library default)")
	schedSaveInterval := flag.Duration("sched-save-interval", 0, "periodic scheduler state save (0 = save only at shutdown; needs -sched-state)")
	decompBudget := flag.Int("decomp-part-budget", 12, "decomp: default relations per partition part (requests override with part_budget)")
	decompSubsolver := flag.String("decomp-subsolver", "", "decomp: solve every part on this named backend instead of hybrid orchestration")
	decompStandard := flag.Bool("decomp-standard-parts", false, "decomp: encode parts with the standard (non-compact) QUBO encoding")
	grace := flag.Duration("grace", 30*time.Second, "graceful shutdown budget")
	shed := flag.Bool("shed", true, "reject with 503 + Retry-After when the request queue is full (false = block until deadline)")
	degrade := flag.Bool("degrade", true, "answer with the classical planner (degraded: true) when the selected backend fails")
	resilient := flag.String("resilient-backends", "anneal,qaoa,tabu,milp", "backends wrapped with retries and a circuit breaker (comma-separated, empty disables)")
	retries := flag.Int("retries", 4, "max solve attempts per request on transient backend faults")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive failures that trip a backend's circuit breaker")
	breakerOpen := flag.Duration("breaker-open", 2*time.Second, "how long a tripped breaker fast-fails before probing the backend")
	chaosRate := flag.Float64("chaos-rate", 0, "inject faults: total per-attempt fault probability, split across rejections, aborts, and corruption (0 disables)")
	chaosQueue := flag.Duration("chaos-queue", 0, "inject faults: mean simulated QPU queue wait per job")
	chaosCalibPeriod := flag.Duration("chaos-calib-period", 0, "inject faults: recalibration blackout period (0 disables)")
	chaosCalibWindow := flag.Duration("chaos-calib-window", 0, "inject faults: blackout length at the start of each period")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the deterministic fault model")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/* and record per-span allocation/CPU deltas")
	traceSample := flag.Float64("trace-sample", 0.05, "fraction of healthy requests to trace (0..1); errors and slow requests are always traced")
	traceCapacity := flag.Int("trace-capacity", 256, "stored trace ring size for /debug/traces")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	self := flag.String("self", "", "cluster: this node's base URL as listed in -peers (empty disables clustering)")
	peers := flag.String("peers", "", "cluster: comma-separated base URLs of every cluster member, including -self")
	vnodes := flag.Int("vnodes", cluster.DefaultVirtualNodes, "cluster: virtual nodes per member on the consistent-hash ring")
	forwardHops := flag.Int("forward-hops", 1, "cluster: max forwards per request before it must be served locally")
	gossipInterval := flag.Duration("gossip-interval", 2*time.Second, "cluster: peer health polling period")
	peerDownAfter := flag.Int("peer-down-after", 2, "cluster: consecutive probe/forward failures that mark a peer down")
	replicas := flag.Int("replicas", cluster.DefaultReplicas, "cluster: replica ownership factor R — each fingerprint gets a primary plus R-1 warm secondaries (1 disables replication)")
	hedgeAfter := flag.Duration("hedge-after", cluster.DefaultHedgeAfter, "cluster: wait this long on a replica before hedging the forward to the next one (negative disables timed hedging)")
	drainTimeout := flag.Duration("drain-timeout", 20*time.Second, "cluster: bound on waiting for in-flight solves after SIGTERM or /v1/drain before the listener closes")
	chaosNetDrop := flag.Float64("chaos-net-drop", 0, "inject network faults: probability a forward hangs until its context expires")
	chaosNetReset := flag.Float64("chaos-net-reset", 0, "inject network faults: probability a forward fails immediately with a reset")
	chaosNetLatency := flag.Duration("chaos-net-latency", 0, "inject network faults: mean added latency per forward (exponential)")
	chaosNetPartition := flag.String("chaos-net-partition", "", `inject network faults: one-way cuts as "from->to" pairs, comma-separated (empty from = any sender)`)
	chaosNetSeed := flag.Int64("chaos-net-seed", 1, "seed for the deterministic network fault model")
	flag.Parse()

	if *traceSample < 0 || *traceSample > 1 {
		usageError(fmt.Sprintf("-trace-sample %v out of range [0, 1]", *traceSample))
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		usageError(err.Error())
	}
	tracer := obs.NewTracer(obs.Options{
		Capacity:   *traceCapacity,
		SampleRate: *traceSample,
		Profile:    *pprofOn,
	})

	prec, err := qsim.ParsePrecision(*precision)
	if err != nil {
		usageError(err.Error())
	}
	reg := service.DefaultRegistry(service.RegistryConfig{
		PegasusM:      *pegasusM,
		MaxQAOAQubits: *qaoaQubits,
		QAOAPrecision: prec,
	})
	svc := service.New(reg, service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DefaultBackend: *defaultBackend,
		Shed:           *shed,
		Degrade:        *degrade,
		Tracer:         tracer,
		Logger:         logger,
		Pprof:          *pprofOn,
	})

	// Resilience stack, inner to outer: fault injection (chaos drills
	// only) → deadline-budgeted retries → circuit breaker. The breaker is
	// outermost so it judges post-retry outcomes, and the wrapped backend
	// keeps its registry name — clients and the hybrid portfolio are none
	// the wiser.
	chaos := *chaosRate > 0 || *chaosQueue > 0 || (*chaosCalibPeriod > 0 && *chaosCalibWindow > 0)
	for _, name := range splitList(*resilient) {
		be, ok := reg.Get(name)
		if !ok {
			fail(fmt.Errorf("qjoind: -resilient-backends names unknown backend %q", name))
		}
		if chaos {
			be = faults.Inject(be, faults.InjectorConfig{
				RejectProb:        *chaosRate / 3,
				AbortProb:         *chaosRate / 3,
				CorruptProb:       *chaosRate / 3,
				Access:            noise.AccessModel{QueueWaitNs: float64(chaosQueue.Nanoseconds())},
				CalibrationPeriod: *chaosCalibPeriod,
				CalibrationWindow: *chaosCalibWindow,
				Seed:              *chaosSeed,
				Metrics:           svc.Metrics(),
			})
		}
		be = faults.WithRetry(be, faults.RetryPolicy{
			MaxAttempts: *retries,
			Seed:        *chaosSeed,
			Metrics:     svc.Metrics(),
		})
		be = faults.WithBreaker(be, faults.BreakerConfig{
			ConsecutiveFailures: *breakerFailures,
			OpenFor:             *breakerOpen,
		})
		if err := reg.Replace(be); err != nil {
			fail(fmt.Errorf("qjoind: %w", err))
		}
	}
	if chaos {
		logger.Warn("CHAOS MODE: injecting faults",
			"rate", *chaosRate, "queue", chaosQueue.String(),
			"seed", *chaosSeed, "backends", *resilient)
	}

	// The learned scheduler routes "learned"-strategy hybrid requests:
	// contextual-bandit models per arm, the greedy floor always riding
	// along as the safety arm. State survives restarts via -sched-state.
	router, err := sched.NewRouter(sched.Config{
		Arms:     splitList(*schedArms),
		Alpha:    *schedAlpha,
		MinPulls: *schedMinPulls,
		Metrics:  svc.Metrics(),
	})
	if err != nil {
		fail(fmt.Errorf("qjoind: %w", err))
	}
	if *schedState != "" {
		loaded, err := router.LoadFile(*schedState)
		if err != nil {
			fail(fmt.Errorf("qjoind: -sched-state: %w", err))
		}
		logger.Info("learned scheduler state", "path", *schedState, "loaded", loaded)
	}
	svc.AddPromCollector(router.WriteProm)

	// The hybrid orchestrator sits on top of the registry it races, so it
	// registers after the service wires up metrics.
	hb, err := hybrid.New(hybrid.Config{
		Registry:   reg,
		Metrics:    svc.Metrics(),
		Strategy:   *hybridStrategy,
		Portfolio:  splitList(*hybridPortfolio),
		HedgeDelay: *hybridHedge,
		Router:     router,
	})
	if err != nil {
		fail(fmt.Errorf("qjoind: %w", err))
	}
	if err := reg.Register(hb); err != nil {
		fail(fmt.Errorf("qjoind: %w", err))
	}

	// The decomposition backend scales past the monolithic encoding limit:
	// it partitions the join graph into QUBO-sized parts, solves each part
	// on the portfolio (or a single named subsolver), and stitches the
	// per-part orders classically. Like hybrid, it sits on top of the
	// registry and registers last.
	db, err := decomp.New(decomp.Config{
		Registry:      reg,
		Metrics:       svc.Metrics(),
		PartBudget:    *decompBudget,
		Subsolver:     *decompSubsolver,
		Portfolio:     splitList(*hybridPortfolio),
		HedgeDelay:    *hybridHedge,
		StandardParts: *decompStandard,
	})
	if err != nil {
		fail(fmt.Errorf("qjoind: %w", err))
	}
	if err := reg.Register(db); err != nil {
		fail(fmt.Errorf("qjoind: %w", err))
	}

	// Clustering wraps the service handler with the consistent-hash
	// forwarding proxy: requests whose WL-hash key another node owns are
	// forwarded there (sticky encoding caches), identical concurrent
	// requests coalesce into one solve, and batch envelopes are split by
	// owner. A single-node deployment skips the wrapper entirely.
	// The scheduler introspection endpoint mounts beside the service
	// routes, inside any cluster wrapper so /v1/sched stays node-local.
	mux := http.NewServeMux()
	mux.Handle("/v1/sched", router.Handler())
	mux.Handle("/", service.NewHandler(svc))
	handler := http.Handler(mux)
	var node *cluster.Node
	if *self != "" {
		// An optional deterministic fault layer under the cluster
		// transport: drops hang until the forward's context expires (so
		// hedging gets exercised), resets fail fast, partitions cut named
		// sender->receiver pairs one way.
		var client *http.Client
		netChaos := *chaosNetDrop > 0 || *chaosNetReset > 0 || *chaosNetLatency > 0 || *chaosNetPartition != ""
		if netChaos {
			parts, err := faults.ParsePartitions(*chaosNetPartition)
			if err != nil {
				usageError(err.Error())
			}
			client = &http.Client{Transport: faults.NewFaultyTransport(nil, faults.NetworkConfig{
				DropProb:   *chaosNetDrop,
				ResetProb:  *chaosNetReset,
				Latency:    *chaosNetLatency,
				Partitions: parts,
				Self:       *self,
				Seed:       *chaosNetSeed,
			})}
			logger.Warn("NETWORK CHAOS: injecting interconnect faults",
				"drop", *chaosNetDrop, "reset", *chaosNetReset,
				"latency", chaosNetLatency.String(), "partitions", *chaosNetPartition,
				"seed", *chaosNetSeed)
		}
		var err error
		node, err = cluster.NewNode(handler, cluster.NodeConfig{
			Self:         *self,
			Peers:        splitList(*peers),
			VirtualNodes: *vnodes,
			MaxHops:      *forwardHops,
			Replicas:     *replicas,
			HedgeAfter:   *hedgeAfter,
			Gossip: cluster.GossipConfig{
				Interval:  *gossipInterval,
				DownAfter: *peerDownAfter,
			},
			Client: client,
			Tracer: tracer,
			Logger: logger,
		})
		if err != nil {
			fail(fmt.Errorf("qjoind: %w", err))
		}
		node.Start()
		defer node.Stop()
		handler = node
		logger.Info("clustering enabled",
			"self", *self, "peers", *peers, "vnodes", *vnodes, "max_hops", *forwardHops,
			"replicas", *replicas, "hedge_after", hedgeAfter.String())
	} else if *peers != "" {
		usageError("-peers requires -self")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *schedState != "" && *schedSaveInterval > 0 {
		go func() {
			t := time.NewTicker(*schedSaveInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := router.SaveFile(*schedState); err != nil {
						logger.Error("sched state save", "error", err)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening",
			"addr", *addr,
			"backends", strings.Join(svc.Backends(), ", "),
			"pprof", *pprofOn, "trace_sample", *traceSample)
		errc <- srv.ListenAndServe()
	}()

	// A /v1/drain request is equivalent to SIGTERM: both flip the node to
	// draining and begin shutdown. drainRequested is nil (never fires) on
	// single-node deployments.
	var drainRequested <-chan struct{}
	if node != nil {
		drainRequested = node.DrainRequested()
	}

	select {
	case <-ctx.Done():
		logger.Info("signal received, draining", "grace", grace.String())
	case <-drainRequested:
		logger.Info("drain requested over HTTP, draining", "grace", grace.String())
	case err := <-errc:
		fail(fmt.Errorf("qjoind: serve: %w", err))
	}

	// Drain the cluster layer first: announce departure to peers, answer
	// "draining" on /healthz so they stop routing new work here, and let
	// in-flight and coalesced solves finish before the listener closes.
	if node != nil {
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := node.Drain(drainCtx); err != nil {
			logger.Error("cluster drain", "error", err)
		}
		cancel()
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("http shutdown", "error", err)
	}
	if err := svc.Close(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("service shutdown", "error", err)
	}
	if *schedState != "" {
		if err := router.SaveFile(*schedState); err != nil {
			logger.Error("sched state save", "error", err)
		}
	}
	logger.Info("bye")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// usageError reports a bad flag value the way the flag package does:
// message, usage text, exit status 2.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "qjoind: "+msg)
	flag.Usage()
	os.Exit(2)
}
