package quantumjoin_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"quantumjoin"
)

func paperQuery() *quantumjoin.Query {
	return &quantumjoin.Query{
		Relations: []quantumjoin.Relation{
			{Name: "R", Card: 100}, {Name: "S", Card: 100}, {Name: "T", Card: 100},
		},
		Predicates: []quantumjoin.Predicate{{R1: 0, R2: 1, Sel: 0.1}},
	}
}

func TestFacadeEndToEndAnnealing(t *testing.T) {
	q := paperQuery()
	order, cost, err := quantumjoin.OptimalJoinOrder(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-101000) > 1e-6 {
		t.Fatalf("optimal cost %v", cost)
	}
	if order[2] != 2 {
		t.Fatalf("optimal order %v should join T last", order)
	}
	enc, err := quantumjoin.Encode(q, quantumjoin.EncodeOptions{
		Thresholds: []float64{1000},
		Omega:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := quantumjoin.SolveAnnealing(enc, quantumjoin.AnnealingOptions{
		Reads: 400, Seed: 7, PegasusM: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost > cost*(1+1e-9) {
		t.Fatalf("annealer best %v worse than optimum %v", res.Best.Cost, cost)
	}
	if res.PhysicalQubits < enc.NumQubits() {
		t.Fatalf("physical %d < logical %d", res.PhysicalQubits, enc.NumQubits())
	}
	if res.ValidFraction <= 0 || res.OptimalFraction > res.ValidFraction {
		t.Fatalf("fractions implausible: %+v", res)
	}
}

func TestFacadeEndToEndQAOA(t *testing.T) {
	// Two relations: a 6-qubit encoding QAOA handles instantly.
	q := &quantumjoin.Query{
		Relations: []quantumjoin.Relation{
			{Name: "A", Card: 10}, {Name: "B", Card: 1000},
		},
	}
	enc, err := quantumjoin.Encode(q, quantumjoin.EncodeOptions{
		Thresholds: []float64{100},
		Omega:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := quantumjoin.SolveQAOA(enc, quantumjoin.QAOAOptions{
		Iterations: 8, Shots: 512, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, cost, err := quantumjoin.OptimalJoinOrder(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost > cost*(1+1e-9) {
		t.Fatalf("QAOA best %v worse than optimum %v", res.Best.Cost, cost)
	}
}

func TestFacadeGeneratorAndBounds(t *testing.T) {
	q, err := quantumjoin.GenerateQuery(quantumjoin.GeneratorConfig{
		Relations: 5, Graph: quantumjoin.Cycle, IntegerLog: true,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := quantumjoin.Encode(q, quantumjoin.EncodeOptions{
		Thresholds: quantumjoin.DefaultThresholds(q, 2),
		Omega:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := quantumjoin.QubitUpperBound(q, 2, 1)
	if enc.NumQubits() > bound {
		t.Fatalf("encoding %d qubits exceeds bound %d", enc.NumQubits(), bound)
	}
	gOrder, gCost := quantumjoin.GreedyJoinOrder(q)
	if !gOrder.IsPermutation(5) {
		t.Fatal("greedy order invalid")
	}
	_, opt, err := quantumjoin.OptimalJoinOrder(q)
	if err != nil {
		t.Fatal(err)
	}
	if gCost < opt*(1-1e-9) {
		t.Fatal("greedy beat the optimum")
	}
}

func TestFacadeNoisyQAOA(t *testing.T) {
	q := &quantumjoin.Query{
		Relations: []quantumjoin.Relation{
			{Name: "A", Card: 10}, {Name: "B", Card: 100},
		},
	}
	enc, err := quantumjoin.Encode(q, quantumjoin.EncodeOptions{
		Thresholds: []float64{10},
		Omega:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := quantumjoin.SolveQAOA(enc, quantumjoin.QAOAOptions{
		Iterations: 3, Shots: 512, Seed: 5, Noisy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With noise the valid fraction drops towards the combinatorial floor
	// but valid solutions still appear for this tiny instance.
	if res.ValidFraction <= 0 {
		t.Fatal("no valid samples at all")
	}
}

func TestFacadeSolveTabu(t *testing.T) {
	q := paperQuery()
	_, optCost, err := quantumjoin.OptimalJoinOrder(q)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := quantumjoin.Encode(q, quantumjoin.EncodeOptions{
		Thresholds: []float64{1000},
		Omega:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := quantumjoin.SolveTabu(context.Background(), enc, quantumjoin.TabuOptions{
		Restarts: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Valid {
		t.Fatal("tabu search found no valid join order")
	}
	if res.Best.Cost > optCost*(1+1e-9) {
		t.Fatalf("tabu best %v worse than optimum %v", res.Best.Cost, optCost)
	}

	// Cancellation surfaces the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := quantumjoin.SolveTabu(ctx, enc, quantumjoin.TabuOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SolveTabu err = %v", err)
	}
}

func TestFacadeSolveAnnealingContextCancelled(t *testing.T) {
	enc, err := quantumjoin.Encode(paperQuery(), quantumjoin.EncodeOptions{
		Thresholds: []float64{1000},
		Omega:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = quantumjoin.SolveAnnealingContext(ctx, enc, quantumjoin.AnnealingOptions{
		Reads: 100, PegasusM: 4,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
