package quantumjoin_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its table/figure through the same
// code path as cmd/experiments and reports domain-specific metrics
// (qubits, depths, valid/optimal fractions) alongside time/op. Sizes are
// the bench-scale configuration documented in EXPERIMENTS.md; run
// cmd/experiments -full for paper-scale dimensions.

import (
	"context"
	"fmt"
	"testing"

	"quantumjoin/internal/experiments"
	"quantumjoin/internal/join"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// benchConfig is small enough for repeated benchmark iterations on one
// core while exercising every code path of the full experiments.
func benchConfig() experiments.Config {
	return experiments.Config{
		Seed: 1,
		// Workers: 0 fans repetitions and sweep cells over GOMAXPROCS
		// goroutines; results are identical for any worker count, so the
		// reported metrics are comparable across machines.
		Workers:             0,
		TranspileRuns:       5,
		QAOAShots:           1024,
		QAOAIterations:      []int{3},
		MaxQAOAQubits:       18,
		EmbedRelations:      []int{3, 4, 5, 6},
		EmbedFixedRelations: 5,
		EmbedMaxThresholds:  3,
		PegasusM:            4,
		EmbedTries:          3,
		AnnealReads:         150,
		AnnealInstances:     2,
		AnnealTimes:         []float64{20, 60, 100},
		AnnealRelations:     []int{3, 4, 5},
		BoundMaxRelations:   64,
		CoDesignRelations:   []int{2, 3, 4},
		CoDesignDensities:   []float64{0, 0.1, 0.5, 1},
	}
}

// BenchmarkTable1ModelPruning regenerates Table 1: variable and
// constraint counts of the original versus the pruned MILP model.
func BenchmarkTable1ModelPruning(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping paper-scale experiment benchmark in -short mode")
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.QubitsOriginal), "qubits-orig")
			b.ReportMetric(float64(res.QubitsPruned), "qubits-pruned")
		}
	}
}

// BenchmarkFigure2CircuitDepth regenerates Figure 2: transpiled QAOA
// circuit depths across precision/predicate scenarios and the
// Falcon-vs-Eagle comparison.
func BenchmarkFigure2CircuitDepth(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping paper-scale experiment benchmark in -short mode")
	}
	// Serial vs worker-pool fan-out of the transpile repetitions: the rows
	// are identical by construction, so the sub-benchmarks measure pure
	// harness scaling (equal on a single-core host).
	for _, workers := range []int{1, 0} {
		name := "workers=1"
		if workers == 0 {
			name = "workers=auto"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFigure2(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					if d, ok := res.MedianFor("predicates", "0 predicates"); ok {
						b.ReportMetric(d, "depth-18q")
					}
					if d, ok := res.MedianFor("predicates", "3 predicates"); ok {
						b.ReportMetric(d, "depth-27q")
					}
				}
			}
		})
	}
}

// BenchmarkTable2QAOAQuality regenerates Table 2: valid/optimal fractions
// of noisy QAOA shots on the simulated Auckland QPU (bench scale: the
// 18-qubit scenario with a reduced optimiser budget).
func BenchmarkTable2QAOAQuality(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping paper-scale experiment benchmark in -short mode")
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if !row.Skipped {
					b.ReportMetric(100*row.Valid, "valid-%")
					b.ReportMetric(100*row.Optimal, "optimal-%")
					break
				}
			}
		}
	}
}

// BenchmarkTimingModel regenerates the §4.2.1 t_s vs t_qpu comparison.
func BenchmarkTimingModel(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping paper-scale experiment benchmark in -short mode")
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTiming(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Rows[0].SamplingMs, "ts-ms")
			b.ReportMetric(res.Rows[0].TotalQPUs*1000, "tqpu-ms")
		}
	}
}

// BenchmarkFigure3Embedding regenerates Figure 3: physical qubits needed
// to minor-embed JO QUBOs onto the Pegasus topology (bench scale: P4).
func BenchmarkFigure3Embedding(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping paper-scale experiment benchmark in -short mode")
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if row.Panel == "relations" && row.OK {
					b.ReportMetric(float64(row.PhysicalQubits), "phys-qubits-first")
					break
				}
			}
		}
	}
}

// BenchmarkTable3Annealing regenerates Table 3: valid/optimal fractions
// of annealing reads across relations, graph types and annealing times.
func BenchmarkTable3Annealing(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping paper-scale experiment benchmark in -short mode")
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res.ValidFor(3), "valid3rel-%")
			b.ReportMetric(100*res.ValidFor(5), "valid5rel-%")
		}
	}
}

// BenchmarkFigure4QubitBounds regenerates Figure 4: the Theorem 5.3
// logical-qubit upper bounds up to 64 relations.
func BenchmarkFigure4QubitBounds(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping paper-scale experiment benchmark in -short mode")
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if v, ok := res.BoundFor(60, 10, 2); ok {
				b.ReportMetric(float64(v), "bound-60rel")
			}
			b.ReportMetric(float64(res.MaxRelationsWithin(1000, 2, 0)), "rel-at-1000q")
		}
	}
}

// BenchmarkFigure5CoDesign regenerates Figure 5: circuit depths on
// extrapolated topologies across density, gate set and router choices.
func BenchmarkFigure5CoDesign(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping paper-scale experiment benchmark in -short mode")
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(res.Rows) > 0 {
			b.ReportMetric(res.Rows[0].Median, "depth-first-row")
		}
	}
}

// BenchmarkServiceOptimize measures a qjoind optimize round-trip through
// the service layer with a cheap (greedy) backend, so the encoding path
// dominates. The cold variant purges the encoding cache every iteration;
// the warm variant reuses the cached QUBO encoding.
func BenchmarkServiceOptimize(b *testing.B) {
	reg := service.NewRegistry()
	if err := reg.Register(service.NewGreedyBackend()); err != nil {
		b.Fatal(err)
	}
	svc := service.New(reg, service.Config{Workers: 2, DefaultBackend: "greedy"})
	defer svc.Close(context.Background())

	const n = 7
	q := &join.Query{Relations: make([]join.Relation, n)}
	for i := range q.Relations {
		q.Relations[i] = join.Relation{Name: fmt.Sprintf("r%d", i), Card: float64(10 * (i + 1))}
		if i > 0 {
			q.Predicates = append(q.Predicates, join.Predicate{R1: i - 1, R2: i, Sel: 0.1})
		}
	}
	req := func() *service.Request {
		return &service.Request{Query: q, Spec: service.EncodeSpec{Thresholds: 3}}
	}

	b.Run("cold-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc.PurgeCache()
			if _, err := svc.Optimize(context.Background(), req()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-cache", func(b *testing.B) {
		if _, err := svc.Optimize(context.Background(), req()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := svc.Optimize(context.Background(), req())
			if err != nil {
				b.Fatal(err)
			}
			if !resp.CacheHit {
				b.Fatal("warm request missed the encoding cache")
			}
		}
	})
	// The traced variant runs the same warm path with a tracer at full
	// sampling — the worst observability case. cmd/obsbench compares the
	// two and enforces the overhead budget from DESIGN.md.
	b.Run("warm-cache-traced", func(b *testing.B) {
		tracer := obs.NewTracer(obs.Options{Capacity: 64, SampleRate: 1})
		reg := service.NewRegistry()
		if err := reg.Register(service.NewGreedyBackend()); err != nil {
			b.Fatal(err)
		}
		tsvc := service.New(reg, service.Config{Workers: 2, DefaultBackend: "greedy", Tracer: tracer})
		defer tsvc.Close(context.Background())
		if _, err := tsvc.Optimize(context.Background(), req()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tsvc.Optimize(context.Background(), req()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
